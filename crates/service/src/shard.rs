//! Shard workers: each shard is one OS thread owning a disjoint set of
//! tenants, drained from a bounded MPSC command queue.
//!
//! Senders first `try_send`; when the queue is full they count a backpressure
//! wait and fall back to a blocking `send` (or a deadline-bounded spin via
//! [`ShardHandle::send_deadline`]), so producers slow down to the shard's
//! drain rate instead of growing an unbounded buffer. Queue depth is tracked
//! with a shared atomic (incremented on enqueue, decremented when the worker
//! pops), which keeps the hot path lock-free.
//!
//! The worker's whole run loop executes under `catch_unwind`: a panic —
//! injected via [`crate::ShardFaults`] or real — is captured into a shared
//! slot ([`ShardHandle::panic_message`]) and the thread exits cleanly, so a
//! supervisor can detect the death ([`ShardHandle::is_finished`], send
//! failures, reply timeouts) and rebuild the shard from checkpoint + WAL.
//!
//! Journaled commands carry an **epoch sequence number** (their WAL offset
//! plus one). After fully applying such a command the worker publishes the
//! sequence into a shared atomic, so a supervisor can acknowledge whole
//! batches of work by waiting on one offset
//! ([`ShardHandle::wait_applied`]) instead of allocating a reply channel
//! per command — the backbone of batched ingestion and parallel tick
//! fan-out.

use crate::error::{ServiceError, ServiceResult};
use crate::faults::{self, ShardFaults};
use crate::stats::{LatencyHistogramNs, ShardStats};
use crate::tenant::{Tenant, TenantSnapshot, TenantSpec};
use rrs_core::{ColorId, RunResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tenants are identified service-wide by an opaque integer id.
pub type TenantId = u64;

/// Commands a shard worker understands.
pub enum Command {
    /// Registers a new tenant at round 0.
    AddTenant {
        /// Service-wide tenant id.
        id: TenantId,
        /// Instance parameters for the tenant's engine.
        spec: TenantSpec,
        /// Acknowledgement channel.
        reply: SyncSender<ServiceResult<()>>,
    },
    /// Buffers arrivals into a tenant's inbox for its next tick.
    Submit {
        /// Target tenant.
        tenant: TenantId,
        /// `(color, count)` pairs; counts merge per color.
        arrivals: Vec<(ColorId, u64)>,
        /// Epoch sequence (WAL offset + 1) published once applied;
        /// 0 = unjournaled, nothing to publish.
        seq: u64,
    },
    /// Group commit: every buffered submit destined for this shard within
    /// one tick epoch, applied in submission order.
    SubmitBatch {
        /// `(tenant, arrivals)` entries in original submission order.
        entries: Vec<(TenantId, Vec<(ColorId, u64)>)>,
        /// Epoch sequence (WAL offset + 1) published once applied.
        seq: u64,
    },
    /// Advances every owned tenant one round.
    Tick {
        /// Epoch sequence (WAL offset + 1) published once applied;
        /// 0 = unjournaled, nothing to publish.
        seq: u64,
    },
    /// Captures a serializable snapshot of every owned tenant.
    Snapshot {
        /// Reply channel for the captured state.
        reply: SyncSender<ShardSnapshot>,
    },
    /// Reports the shard's counters.
    Stats {
        /// Reply channel for the counters.
        reply: SyncSender<ShardStats>,
    },
    /// Replaces the worker's tenants with a snapshot's (in-place rollback;
    /// the worker thread and its counters survive).
    Restore {
        /// The state to roll back to.
        snapshot: ShardSnapshot,
        /// Acknowledgement channel.
        reply: SyncSender<ServiceResult<()>>,
    },
    /// Drains every tenant to its horizon and shuts the worker down.
    Finish {
        /// Reply channel for the final per-tenant results.
        reply: SyncSender<ServiceResult<Vec<(TenantId, RunResult)>>>,
    },
}

/// Serializable capture of one shard: every owned tenant's snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// The shard index the snapshot was taken from.
    pub shard: usize,
    /// `(tenant id, snapshot)` in ascending tenant order.
    pub tenants: Vec<(TenantId, TenantSnapshot)>,
}

impl ShardSnapshot {
    /// Job conservation over every tenant in the shard.
    pub fn conserves_jobs(&self) -> bool {
        self.tenants.iter().all(|(_, t)| t.conserves_jobs())
    }

    /// Structural validation against a topology: the shard index must be in
    /// range, tenant entries strictly ascending (no duplicates), every
    /// tenant must route to this shard under `route`, and every tenant must
    /// conserve jobs. Returns the first violation as a typed error.
    pub fn validate(
        &self,
        shards: usize,
        route: impl Fn(TenantId) -> usize,
    ) -> ServiceResult<()> {
        if self.shard >= shards {
            return Err(ServiceError::UnknownShard(self.shard));
        }
        let mut prev: Option<TenantId> = None;
        for (id, t) in &self.tenants {
            match prev {
                Some(p) if p == *id => return Err(ServiceError::DuplicateTenant(*id)),
                Some(p) if p > *id => {
                    return Err(ServiceError::Corrupt(format!(
                        "tenant entries out of order ({p} before {id})"
                    )))
                }
                _ => {}
            }
            prev = Some(*id);
            let expected = route(*id);
            if expected != self.shard {
                return Err(ServiceError::MisroutedTenant {
                    tenant: *id,
                    shard: self.shard,
                    expected,
                });
            }
            if !t.conserves_jobs() {
                return Err(ServiceError::Corrupt(format!(
                    "tenant {id} violates job conservation \
                     (arrived {} != executed {} + dropped {} + pending {})",
                    t.arrived(),
                    t.engine.result.executed,
                    t.engine.result.dropped_jobs,
                    t.engine.pending.total(),
                )));
            }
        }
        Ok(())
    }
}

/// Bounded exponential backoff for short waits: a few spin-loop hints,
/// then scheduler yields, then jittered sleeps doubling from 10 µs up to a
/// 1 ms cap. Keeps the first retries in the sub-microsecond range (epoch
/// joins usually resolve immediately) without ever busy-burning a core when
/// the other side is genuinely slow. The sleep stage draws a deterministic
/// jitter from the backoff's seed, so waiters seeded differently (e.g. by
/// shard index) desynchronize instead of thundering in lockstep.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
    seed: u64,
}

impl Backoff {
    const SPINS: u32 = 6;
    const YIELDS: u32 = 10;
    const BASE_SLEEP_MICROS: u64 = 10;
    const MAX_SLEEP_MICROS: u64 = 1_000;

    /// A fresh backoff at the spinning stage (seed 0).
    pub fn new() -> Self {
        Backoff::default()
    }

    /// A fresh backoff whose sleep stage jitters deterministically from
    /// `seed`.
    pub fn seeded(seed: u64) -> Self {
        Backoff { step: 0, seed }
    }

    /// The sleep duration in microseconds for escalation step `step` under
    /// `seed`: zero through the spin/yield stages, then a deterministic
    /// draw from `[base/2, base]` of the doubling schedule, never exceeding
    /// the 1 ms cap. Pure, so tests can pin bounds and determinism.
    pub fn sleep_micros_for(step: u32, seed: u64) -> u64 {
        if step < Self::SPINS + Self::YIELDS {
            return 0;
        }
        let exp = (step - Self::SPINS - Self::YIELDS).min(7);
        let base = (Self::BASE_SLEEP_MICROS << exp).min(Self::MAX_SLEEP_MICROS);
        faults::jitter_range(base / 2, base, seed, u64::from(step))
    }

    /// Waits one step and escalates: spin → yield → capped jittered sleep.
    pub fn wait(&mut self) {
        if self.step < Self::SPINS {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step < Self::SPINS + Self::YIELDS {
            std::thread::yield_now();
        } else {
            let micros = Self::sleep_micros_for(self.step, self.seed);
            std::thread::sleep(Duration::from_micros(micros));
        }
        self.step = self.step.saturating_add(1);
    }

    /// Whether the backoff has escalated past spinning/yielding to sleeps.
    pub fn is_sleeping(&self) -> bool {
        self.step > Self::SPINS + Self::YIELDS
    }
}

/// Parameters for one worker thread.
#[derive(Debug, Clone, Copy)]
pub struct WorkerConfig {
    /// The shard index.
    pub shard: usize,
    /// Bounded command-queue capacity.
    pub queue_capacity: usize,
    /// Inbox watermark for submit-time load shedding (`None` = never shed).
    pub inbox_watermark: Option<u64>,
    /// Ticks already applied to the handed-over tenants (non-zero when a
    /// supervisor respawns a shard), so fault arming and tick counters stay
    /// in absolute shard-lifetime ticks.
    pub ticks_done: u64,
    /// Epoch sequence the handed-over tenants already reflect (the WAL end
    /// after recovery replay): the worker's applied-offset atomic starts
    /// here, so supervisors waiting on pre-crash sequences resolve at once.
    pub applied_start: u64,
}

impl WorkerConfig {
    /// A fresh worker for `shard` with the given queue capacity.
    pub fn new(shard: usize, queue_capacity: usize) -> Self {
        WorkerConfig {
            shard,
            queue_capacity,
            inbox_watermark: None,
            ticks_done: 0,
            applied_start: 0,
        }
    }
}

/// Sender side of a shard: the command queue plus its shared gauges.
pub struct ShardHandle {
    shard: usize,
    tx: SyncSender<Command>,
    depth: Arc<AtomicUsize>,
    backpressure: Arc<AtomicU64>,
    applied: Arc<AtomicU64>,
    panic_slot: Arc<Mutex<Option<String>>>,
    join: JoinHandle<()>,
}

impl ShardHandle {
    /// The shard index this handle talks to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Commands currently queued.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Whether the worker thread has exited (finished, killed or panicked).
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// The highest epoch sequence the worker has fully applied.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Waits (spin → yield → bounded sleeps) until the worker has applied
    /// epoch sequence `seq`, i.e. every journaled command at WAL offsets
    /// `< seq` has taken effect. One offset wait acknowledges an entire
    /// batch of commands — no per-command reply channels. A dead worker is
    /// reported as [`ServiceError::ShardDown`], deadline expiry as
    /// [`ServiceError::Timeout`], mirroring the reply-channel semantics.
    pub fn wait_applied(&self, seq: u64, deadline: Instant) -> ServiceResult<()> {
        let mut backoff = Backoff::seeded(self.shard as u64);
        loop {
            if self.applied.load(Ordering::Acquire) >= seq {
                return Ok(());
            }
            if self.is_finished() {
                // The worker may have published and then exited; re-check
                // once so a clean shutdown is not misread as a crash.
                if self.applied.load(Ordering::Acquire) >= seq {
                    return Ok(());
                }
                return Err(ServiceError::ShardDown(self.shard));
            }
            if Instant::now() >= deadline {
                return Err(ServiceError::Timeout(self.shard));
            }
            backoff.wait();
        }
    }

    /// The captured panic message, if the worker died panicking.
    pub fn panic_message(&self) -> Option<String> {
        self.panic_slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Enqueues a command, blocking (and counting a backpressure wait) when
    /// the bounded queue is full.
    pub fn send(&self, cmd: Command) -> ServiceResult<()> {
        // Count the slot before the worker can pop it, so depth never reads
        // negative under a fast consumer.
        self.depth.fetch_add(1, Ordering::Relaxed);
        let res = match self.tx.try_send(cmd) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(cmd)) => {
                self.backpressure.fetch_add(1, Ordering::Relaxed);
                self.tx.send(cmd).map_err(|_| ())
            }
            Err(TrySendError::Disconnected(_)) => Err(()),
        };
        res.map_err(|()| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            ServiceError::ShardDown(self.shard)
        })
    }

    /// Enqueues a command without ever blocking past `deadline`: a full
    /// queue is retried (one counted backpressure wait) until the deadline,
    /// then reported as [`ServiceError::Timeout`] — a stalled worker cannot
    /// hang the sender.
    pub fn send_deadline(&self, cmd: Command, deadline: Instant) -> ServiceResult<()> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        let mut cmd = cmd;
        let mut counted = false;
        let mut backoff = Backoff::seeded(self.shard as u64);
        loop {
            match self.tx.try_send(cmd) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(c)) => {
                    if !counted {
                        self.backpressure.fetch_add(1, Ordering::Relaxed);
                        counted = true;
                    }
                    if Instant::now() >= deadline {
                        self.depth.fetch_sub(1, Ordering::Relaxed);
                        return Err(ServiceError::Timeout(self.shard));
                    }
                    cmd = c;
                    // Saturated producers escalate to bounded sleeps instead
                    // of burning a core at a fixed spin cadence.
                    backoff.wait();
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    return Err(ServiceError::ShardDown(self.shard));
                }
            }
        }
    }

    /// Sends a command and waits for its reply.
    fn round_trip<T>(
        &self,
        make: impl FnOnce(SyncSender<T>) -> Command,
    ) -> ServiceResult<T> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.send(make(reply_tx))?;
        reply_rx.recv().map_err(|_| ServiceError::ShardDown(self.shard))
    }

    /// Sends a command and waits at most `timeout` (covering both the
    /// enqueue and the reply) for its answer. A missing reply — dead worker,
    /// stalled worker, dropped reply — becomes a typed
    /// [`ServiceError::Timeout`] / [`ServiceError::ShardDown`] instead of a
    /// hang.
    pub fn round_trip_deadline<T>(
        &self,
        make: impl FnOnce(SyncSender<T>) -> Command,
        timeout: Duration,
    ) -> ServiceResult<T> {
        let deadline = Instant::now() + timeout;
        let (reply_tx, reply_rx) = sync_channel(1);
        self.send_deadline(make(reply_tx), deadline)?;
        reply_rx
            .recv_timeout(deadline.saturating_duration_since(Instant::now()))
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => ServiceError::Timeout(self.shard),
                RecvTimeoutError::Disconnected => ServiceError::ShardDown(self.shard),
            })
    }

    /// Registers a tenant and waits for the acknowledgement.
    pub fn add_tenant(&self, id: TenantId, spec: TenantSpec) -> ServiceResult<()> {
        self.round_trip(|reply| Command::AddTenant { id, spec, reply })?
    }

    /// Captures the shard's state.
    pub fn snapshot(&self) -> ServiceResult<ShardSnapshot> {
        self.round_trip(|reply| Command::Snapshot { reply })
    }

    /// Rolls the live worker back to a snapshot and waits for the
    /// acknowledgement.
    pub fn restore(&self, snapshot: ShardSnapshot) -> ServiceResult<()> {
        self.round_trip(|reply| Command::Restore { snapshot, reply })?
    }

    /// Reads the shard's counters.
    pub fn stats(&self) -> ServiceResult<ShardStats> {
        self.round_trip(|reply| Command::Stats { reply })
    }

    /// Drains every tenant without consuming the handle: the worker shuts
    /// down after replying, bounded by `timeout`. The supervisor's retryable
    /// flavor of [`ShardHandle::finish`].
    pub fn finish_timeout(
        &self,
        timeout: Duration,
    ) -> ServiceResult<Vec<(TenantId, RunResult)>> {
        self.round_trip_deadline(|reply| Command::Finish { reply }, timeout)?
    }

    /// Drains every tenant and joins the worker.
    pub fn finish(self) -> ServiceResult<Vec<(TenantId, RunResult)>> {
        let results = self.round_trip(|reply| Command::Finish { reply })?;
        let _ = self.join.join();
        results
    }

    /// Kills the worker without draining: the queue is closed and the thread
    /// joined. Owned tenants are discarded — restore them from a snapshot.
    pub fn kill(self) {
        drop(self.tx);
        let _ = self.join.join();
    }

    /// Drops the handle without joining the worker — for replacing a worker
    /// that may be stalled (joining it would block the supervisor). The
    /// orphan exits on its own once it drains the closed queue or wakes from
    /// its stall; its tenants are discarded.
    pub fn abandon(self) {
        drop(self.tx);
        // JoinHandle dropped: the thread is detached.
    }
}

/// Spawns a shard worker owning `tenants` (empty for a fresh shard, restored
/// tenants when rebuilding a killed shard).
pub fn spawn_shard(
    shard: usize,
    queue_capacity: usize,
    tenants: BTreeMap<TenantId, Tenant>,
) -> ServiceResult<ShardHandle> {
    spawn_shard_with(WorkerConfig::new(shard, queue_capacity), ShardFaults::none(), tenants)
}

/// Spawns a shard worker with full control over watermarks, fault injection
/// and the starting tick count.
pub fn spawn_shard_with(
    config: WorkerConfig,
    faults: Arc<ShardFaults>,
    tenants: BTreeMap<TenantId, Tenant>,
) -> ServiceResult<ShardHandle> {
    let shard = config.shard;
    let (tx, rx) = sync_channel(config.queue_capacity.max(1));
    let depth = Arc::new(AtomicUsize::new(0));
    let backpressure = Arc::new(AtomicU64::new(0));
    let applied = Arc::new(AtomicU64::new(config.applied_start));
    let panic_slot = Arc::new(Mutex::new(None));
    let worker = Worker {
        tenants,
        stats: ShardStats { shard, ..ShardStats::default() },
        depth: Arc::clone(&depth),
        backpressure: Arc::clone(&backpressure),
        applied: Arc::clone(&applied),
        inbox_watermark: config.inbox_watermark,
        ticks_done: config.ticks_done,
        faults,
    };
    let slot = Arc::clone(&panic_slot);
    let join = std::thread::Builder::new()
        .name(format!("rrs-shard-{shard}"))
        .spawn(move || {
            // Capture panics — injected or real — so the thread exits
            // cleanly and the supervisor can read the cause.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(move || worker.run(rx))) {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked (non-string payload)".into());
                *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(msg);
            }
        })
        .map_err(|e| ServiceError::Spawn(format!("shard {shard}: {e}")))?;
    Ok(ShardHandle { shard, tx, depth, backpressure, applied, panic_slot, join })
}

struct Worker {
    tenants: BTreeMap<TenantId, Tenant>,
    stats: ShardStats,
    depth: Arc<AtomicUsize>,
    backpressure: Arc<AtomicU64>,
    applied: Arc<AtomicU64>,
    inbox_watermark: Option<u64>,
    ticks_done: u64,
    faults: Arc<ShardFaults>,
}

impl Worker {
    fn run(mut self, rx: Receiver<Command>) {
        while let Ok(cmd) = rx.recv() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            self.stats.commands += 1;
            if self.handle(cmd) {
                return; // Finish processed — shut down.
            }
        }
        // All senders dropped: the shard was killed. Owned tenants are
        // discarded; a restore path rebuilds them from the last snapshot.
    }

    /// Sends a reply unless a reply-drop fault eats it. A receiver that
    /// already gave up (timed out) is not an error.
    fn reply<T>(&mut self, ch: SyncSender<T>, value: T) {
        if self.faults.take_reply_drop(self.ticks_done) {
            self.stats.faults_injected += 1;
            return;
        }
        let _ = ch.send(value);
    }

    /// Publishes an applied epoch sequence (release-ordered, so a waiter
    /// that observes it also observes the command's effects). `seq` 0 marks
    /// an unjournaled command — nothing to acknowledge. An ack-drop fault
    /// suppresses the publication: the state advanced but the supervisor
    /// never hears, exercising the offset-join timeout path.
    fn publish(&mut self, seq: u64) {
        if seq == 0 {
            return;
        }
        if self.faults.take_ack_drop(self.ticks_done) {
            self.stats.faults_injected += 1;
            return;
        }
        self.applied.fetch_max(seq, Ordering::Release);
    }

    /// Returns `true` when the worker should shut down.
    fn handle(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::AddTenant { id, spec, reply } => {
                let res = match self.tenants.entry(id) {
                    std::collections::btree_map::Entry::Occupied(_) => {
                        Err(ServiceError::DuplicateTenant(id))
                    }
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        Tenant::new(spec).map(|t| {
                            slot.insert(t);
                        })
                    }
                };
                if res.is_err() {
                    self.stats.command_errors += 1;
                }
                self.reply(reply, res);
            }
            Command::Submit { tenant, arrivals, seq } => {
                self.stats.submits += 1;
                match self.tenants.get_mut(&tenant) {
                    // The tenant's own shed counter tracks the drop; stats
                    // aggregate it lazily in `current_stats`.
                    Some(t) => {
                        if t.submit_shedding(&arrivals, self.inbox_watermark).is_err() {
                            self.stats.command_errors += 1;
                        }
                    }
                    None => self.stats.command_errors += 1,
                }
                self.publish(seq);
            }
            Command::SubmitBatch { entries, seq } => {
                // One command, N submits: counters advance per entry so the
                // totals stay comparable with per-command ingestion.
                self.stats.batches += 1;
                self.stats.submits += entries.len() as u64;
                for (tenant, arrivals) in entries {
                    match self.tenants.get_mut(&tenant) {
                        Some(t) => {
                            if t.submit_shedding(&arrivals, self.inbox_watermark).is_err() {
                                self.stats.command_errors += 1;
                            }
                        }
                        None => self.stats.command_errors += 1,
                    }
                }
                self.publish(seq);
            }
            Command::Tick { seq } => {
                self.ticks_done += 1;
                match self.faults.take_tick_fault(self.ticks_done) {
                    Some(crate::faults::FaultKind::Panic) => {
                        self.stats.faults_injected += 1;
                        panic!("injected fault: panic at tick {}", self.ticks_done);
                    }
                    Some(crate::faults::FaultKind::Stall { millis }) => {
                        self.stats.faults_injected += 1;
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                    _ => {}
                }
                self.stats.ticks += 1;
                let mut latency = LatencyHistogramNs::new();
                for t in self.tenants.values_mut() {
                    let start = Instant::now();
                    if t.tick().is_err() {
                        self.stats.command_errors += 1;
                    }
                    latency.record(start.elapsed().as_nanos() as u64);
                }
                self.stats.step_latency.merge(&latency);
                self.publish(seq);
            }
            Command::Snapshot { reply } => {
                let mut snap = ShardSnapshot {
                    shard: self.stats.shard,
                    tenants: self
                        .tenants
                        .iter()
                        .map(|(&id, t)| (id, t.snapshot()))
                        .collect(),
                };
                if self.faults.take_snapshot_corruption(self.ticks_done) {
                    self.stats.faults_injected += 1;
                    // Silent bit-flip: inflate one executed count, breaking
                    // job conservation (checkpoint validation must reject).
                    if let Some((_, t)) = snap.tenants.first_mut() {
                        t.engine.result.executed += 1;
                    }
                }
                self.reply(reply, snap);
            }
            Command::Stats { reply } => {
                let stats = self.current_stats();
                self.reply(reply, stats);
            }
            Command::Restore { snapshot, reply } => {
                let res = if snapshot.shard != self.stats.shard {
                    Err(ServiceError::Corrupt(format!(
                        "snapshot of shard {} sent to shard {}",
                        snapshot.shard, self.stats.shard
                    )))
                } else {
                    restore_tenants(snapshot).map(|tenants| {
                        self.tenants = tenants;
                    })
                };
                if res.is_err() {
                    self.stats.command_errors += 1;
                }
                self.reply(reply, res);
            }
            Command::Finish { reply } => {
                let tenants = std::mem::take(&mut self.tenants);
                let mut results = Vec::with_capacity(tenants.len());
                let res = (|| {
                    for (id, t) in tenants {
                        results.push((id, t.finish()?));
                    }
                    Ok(std::mem::take(&mut results))
                })();
                self.reply(reply, res);
                return true;
            }
        }
        false
    }

    fn current_stats(&self) -> ShardStats {
        let mut s = self.stats.clone();
        s.tenants = self.tenants.len();
        s.queue_depth = self.depth.load(Ordering::Relaxed);
        s.backpressure_waits = self.backpressure.load(Ordering::Relaxed);
        let (mut executed, mut dropped, mut reconfig, mut shed) = (0, 0, 0, 0);
        for t in self.tenants.values() {
            let p = t.progress();
            executed += p.executed;
            dropped += p.dropped;
            reconfig += p.cost.reconfig;
            shed += p.shed;
        }
        s.executed = executed;
        s.dropped = dropped;
        s.reconfig_cost = reconfig;
        s.shed_jobs = shed;
        s
    }
}

/// Rebuilds the tenants of a [`ShardSnapshot`] (replay + verification per
/// tenant), ready to hand to [`spawn_shard`].
pub fn restore_tenants(
    snapshot: ShardSnapshot,
) -> ServiceResult<BTreeMap<TenantId, Tenant>> {
    let mut tenants = BTreeMap::new();
    for (id, snap) in snapshot.tenants {
        if tenants.insert(id, Tenant::restore(snap)?).is_some() {
            return Err(ServiceError::DuplicateTenant(id));
        }
    }
    Ok(tenants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use rrs_core::ColorTable;

    fn spec() -> TenantSpec {
        TenantSpec::new(PolicySpec::DlruEdf, ColorTable::from_delay_bounds(&[2, 4]), 4, 2)
    }

    #[test]
    fn backoff_sleep_stage_is_bounded_and_deterministic() {
        let sleep_start = Backoff::SPINS + Backoff::YIELDS;
        // Spin/yield stages never sleep.
        for step in 0..sleep_start {
            assert_eq!(Backoff::sleep_micros_for(step, 3), 0);
        }
        // Every sleep stays within [base/2, base] of the doubling schedule,
        // capped at MAX_SLEEP_MICROS, and the same (step, seed) pair always
        // draws the same jitter.
        for step in sleep_start..sleep_start + 12 {
            let exp = (step - sleep_start).min(7);
            let base = (Backoff::BASE_SLEEP_MICROS << exp).min(Backoff::MAX_SLEEP_MICROS);
            for seed in 0..16u64 {
                let micros = Backoff::sleep_micros_for(step, seed);
                assert!(micros >= base / 2 && micros <= base, "step {step} seed {seed}: {micros}");
                assert_eq!(micros, Backoff::sleep_micros_for(step, seed));
            }
        }
        // Different seeds actually desynchronize somewhere in the schedule.
        assert!(
            (sleep_start + 2..sleep_start + 12)
                .any(|s| Backoff::sleep_micros_for(s, 1) != Backoff::sleep_micros_for(s, 2)),
            "seeds 1 and 2 never diverged"
        );
    }

    #[test]
    fn worker_processes_commands_and_finishes() {
        let h = spawn_shard(0, 4, BTreeMap::new()).unwrap();
        h.add_tenant(7, spec()).unwrap();
        assert!(matches!(
            h.add_tenant(7, spec()),
            Err(ServiceError::DuplicateTenant(7))
        ));
        h.send(Command::Submit { tenant: 7, arrivals: vec![(ColorId(0), 3)], seq: 0 }).unwrap();
        h.send(Command::Tick { seq: 0 }).unwrap();
        let snap = h.snapshot().unwrap();
        assert_eq!(snap.tenants.len(), 1);
        assert!(snap.conserves_jobs());
        let stats = h.stats().unwrap();
        assert_eq!(stats.ticks, 1);
        assert_eq!(stats.submits, 1);
        let results = h.finish().unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0].1;
        assert_eq!(r.executed + r.dropped_jobs, 3);
    }

    #[test]
    fn kill_then_restore_continues_from_snapshot() {
        let h = spawn_shard(1, 4, BTreeMap::new()).unwrap();
        h.add_tenant(1, spec()).unwrap();
        for _ in 0..5 {
            h.send(Command::Submit { tenant: 1, arrivals: vec![(ColorId(1), 2)], seq: 0 }).unwrap();
            h.send(Command::Tick { seq: 0 }).unwrap();
        }
        let snap = h.snapshot().unwrap();
        h.kill();
        let rebuilt = restore_tenants(snap.clone()).unwrap();
        let h2 = spawn_shard(1, 4, rebuilt).unwrap();
        let snap2 = h2.snapshot().unwrap();
        assert_eq!(snap2, snap, "restored shard state is bit-identical");
        let results = h2.finish().unwrap();
        assert_eq!(results[0].1.executed + results[0].1.dropped_jobs, 10);
    }

    #[test]
    fn send_to_dead_shard_reports_shard_down() {
        let h = spawn_shard(2, 4, BTreeMap::new()).unwrap();
        let (reply_tx, reply_rx) = sync_channel(1);
        h.send(Command::Finish { reply: reply_tx }).unwrap();
        reply_rx.recv().unwrap().unwrap();
        // Wait for the worker to actually exit so the queue is closed.
        while !h.is_finished() {
            std::thread::yield_now();
        }
        assert!(matches!(h.send(Command::Tick { seq: 0 }), Err(ServiceError::ShardDown(2))));
        assert!(h.panic_message().is_none());
    }

    #[test]
    fn injected_panic_is_captured_not_propagated() {
        use crate::faults::{Fault, FaultKind, ShardFaults};
        let faults = Arc::new(ShardFaults::new(vec![Fault {
            shard: 3,
            at_tick: 2,
            kind: FaultKind::Panic,
        }]));
        let h = spawn_shard_with(
            WorkerConfig::new(3, 4),
            Arc::clone(&faults),
            BTreeMap::new(),
        )
        .unwrap();
        h.add_tenant(1, spec()).unwrap();
        h.send(Command::Tick { seq: 0 }).unwrap();
        h.send(Command::Tick { seq: 0 }).unwrap(); // fault arms at tick 2
        while !h.is_finished() {
            std::thread::yield_now();
        }
        assert_eq!(faults.injected(), 1);
        let msg = h.panic_message().expect("panic captured");
        assert!(msg.contains("injected fault"), "unexpected message: {msg}");
        assert!(matches!(h.send(Command::Tick { seq: 0 }), Err(ServiceError::ShardDown(3))));
    }

    #[test]
    fn round_trip_deadline_times_out_on_stall() {
        use crate::faults::{Fault, FaultKind, ShardFaults};
        let faults = Arc::new(ShardFaults::new(vec![Fault {
            shard: 4,
            at_tick: 1,
            kind: FaultKind::Stall { millis: 200 },
        }]));
        let h =
            spawn_shard_with(WorkerConfig::new(4, 4), faults, BTreeMap::new()).unwrap();
        h.send(Command::Tick { seq: 0 }).unwrap();
        let started = Instant::now();
        let res: ServiceResult<ShardSnapshot> = h
            .round_trip_deadline(|reply| Command::Snapshot { reply }, Duration::from_millis(30));
        assert!(matches!(res, Err(ServiceError::Timeout(4))), "got {res:?}");
        assert!(started.elapsed() < Duration::from_millis(190), "deadline was honored");
        h.abandon(); // never join a stalled worker
    }

    #[test]
    fn snapshot_validation_catches_structural_corruption() {
        let h = spawn_shard(0, 4, BTreeMap::new()).unwrap();
        h.add_tenant(2, spec()).unwrap();
        let snap = h.snapshot().unwrap();
        h.kill();

        assert!(snap.validate(1, |_| 0).is_ok());
        assert!(matches!(snap.validate(0, |_| 0), Err(ServiceError::UnknownShard(0))));
        assert!(matches!(
            snap.validate(1, |_| 5),
            Err(ServiceError::MisroutedTenant { tenant: 2, shard: 0, expected: 5 })
        ));

        let mut dup = snap.clone();
        dup.tenants.push(dup.tenants[0].clone());
        assert!(matches!(dup.validate(1, |_| 0), Err(ServiceError::DuplicateTenant(2))));

        let mut unsorted = snap.clone();
        unsorted.tenants.insert(0, (9, snap.tenants[0].1.clone()));
        assert!(matches!(unsorted.validate(1, |_| 0), Err(ServiceError::Corrupt(_))));

        let mut lossy = snap;
        lossy.tenants[0].1.engine.result.executed += 1;
        assert!(matches!(lossy.validate(1, |_| 0), Err(ServiceError::Corrupt(_))));
    }
}
