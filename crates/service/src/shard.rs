//! Shard workers: each shard is one OS thread owning a disjoint set of
//! tenants, drained from a bounded MPSC command queue.
//!
//! Senders first `try_send`; when the queue is full they count a backpressure
//! wait and fall back to a blocking `send`, so producers slow down to the
//! shard's drain rate instead of growing an unbounded buffer. Queue depth is
//! tracked with a shared atomic (incremented on enqueue, decremented when the
//! worker pops), which keeps the hot path lock-free.

use crate::error::{ServiceError, ServiceResult};
use crate::stats::{LatencyHistogramNs, ShardStats};
use crate::tenant::{Tenant, TenantSnapshot, TenantSpec};
use rrs_core::{ColorId, RunResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Tenants are identified service-wide by an opaque integer id.
pub type TenantId = u64;

/// Commands a shard worker understands.
pub enum Command {
    /// Registers a new tenant at round 0.
    AddTenant {
        /// Service-wide tenant id.
        id: TenantId,
        /// Instance parameters for the tenant's engine.
        spec: TenantSpec,
        /// Acknowledgement channel.
        reply: SyncSender<ServiceResult<()>>,
    },
    /// Buffers arrivals into a tenant's inbox for its next tick.
    Submit {
        /// Target tenant.
        tenant: TenantId,
        /// `(color, count)` pairs; counts merge per color.
        arrivals: Vec<(ColorId, u64)>,
    },
    /// Advances every owned tenant one round.
    Tick,
    /// Captures a serializable snapshot of every owned tenant.
    Snapshot {
        /// Reply channel for the captured state.
        reply: SyncSender<ShardSnapshot>,
    },
    /// Reports the shard's counters.
    Stats {
        /// Reply channel for the counters.
        reply: SyncSender<ShardStats>,
    },
    /// Replaces the worker's tenants with a snapshot's (in-place rollback;
    /// the worker thread and its counters survive).
    Restore {
        /// The state to roll back to.
        snapshot: ShardSnapshot,
        /// Acknowledgement channel.
        reply: SyncSender<ServiceResult<()>>,
    },
    /// Drains every tenant to its horizon and shuts the worker down.
    Finish {
        /// Reply channel for the final per-tenant results.
        reply: SyncSender<ServiceResult<Vec<(TenantId, RunResult)>>>,
    },
}

/// Serializable capture of one shard: every owned tenant's snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// The shard index the snapshot was taken from.
    pub shard: usize,
    /// `(tenant id, snapshot)` in ascending tenant order.
    pub tenants: Vec<(TenantId, TenantSnapshot)>,
}

impl ShardSnapshot {
    /// Job conservation over every tenant in the shard.
    pub fn conserves_jobs(&self) -> bool {
        self.tenants.iter().all(|(_, t)| t.conserves_jobs())
    }
}

/// Sender side of a shard: the command queue plus its shared gauges.
pub struct ShardHandle {
    shard: usize,
    tx: SyncSender<Command>,
    depth: Arc<AtomicUsize>,
    backpressure: Arc<AtomicU64>,
    join: JoinHandle<()>,
}

impl ShardHandle {
    /// The shard index this handle talks to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Commands currently queued.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Enqueues a command, blocking (and counting a backpressure wait) when
    /// the bounded queue is full.
    pub fn send(&self, cmd: Command) -> ServiceResult<()> {
        // Count the slot before the worker can pop it, so depth never reads
        // negative under a fast consumer.
        self.depth.fetch_add(1, Ordering::Relaxed);
        let res = match self.tx.try_send(cmd) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(cmd)) => {
                self.backpressure.fetch_add(1, Ordering::Relaxed);
                self.tx.send(cmd).map_err(|_| ())
            }
            Err(TrySendError::Disconnected(_)) => Err(()),
        };
        res.map_err(|()| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            ServiceError::ShardDown(self.shard)
        })
    }

    /// Sends a command and waits for its reply.
    fn round_trip<T>(
        &self,
        make: impl FnOnce(SyncSender<T>) -> Command,
    ) -> ServiceResult<T> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.send(make(reply_tx))?;
        reply_rx.recv().map_err(|_| ServiceError::ShardDown(self.shard))
    }

    /// Registers a tenant and waits for the acknowledgement.
    pub fn add_tenant(&self, id: TenantId, spec: TenantSpec) -> ServiceResult<()> {
        self.round_trip(|reply| Command::AddTenant { id, spec, reply })?
    }

    /// Captures the shard's state.
    pub fn snapshot(&self) -> ServiceResult<ShardSnapshot> {
        self.round_trip(|reply| Command::Snapshot { reply })
    }

    /// Rolls the live worker back to a snapshot and waits for the
    /// acknowledgement.
    pub fn restore(&self, snapshot: ShardSnapshot) -> ServiceResult<()> {
        self.round_trip(|reply| Command::Restore { snapshot, reply })?
    }

    /// Reads the shard's counters.
    pub fn stats(&self) -> ServiceResult<ShardStats> {
        self.round_trip(|reply| Command::Stats { reply })
    }

    /// Drains every tenant and joins the worker.
    pub fn finish(self) -> ServiceResult<Vec<(TenantId, RunResult)>> {
        let results = self.round_trip(|reply| Command::Finish { reply })?;
        let _ = self.join.join();
        results
    }

    /// Kills the worker without draining: the queue is closed and the thread
    /// joined. Owned tenants are discarded — restore them from a snapshot.
    pub fn kill(self) {
        drop(self.tx);
        let _ = self.join.join();
    }
}

/// Spawns a shard worker owning `tenants` (empty for a fresh shard, restored
/// tenants when rebuilding a killed shard).
pub fn spawn_shard(
    shard: usize,
    queue_capacity: usize,
    tenants: BTreeMap<TenantId, Tenant>,
) -> ShardHandle {
    let (tx, rx) = sync_channel(queue_capacity.max(1));
    let depth = Arc::new(AtomicUsize::new(0));
    let backpressure = Arc::new(AtomicU64::new(0));
    let worker = Worker {
        tenants,
        stats: ShardStats { shard, ..ShardStats::default() },
        depth: Arc::clone(&depth),
        backpressure: Arc::clone(&backpressure),
    };
    let join = std::thread::Builder::new()
        .name(format!("rrs-shard-{shard}"))
        .spawn(move || worker.run(rx))
        .expect("spawn shard worker");
    ShardHandle { shard, tx, depth, backpressure, join }
}

struct Worker {
    tenants: BTreeMap<TenantId, Tenant>,
    stats: ShardStats,
    depth: Arc<AtomicUsize>,
    backpressure: Arc<AtomicU64>,
}

impl Worker {
    fn run(mut self, rx: Receiver<Command>) {
        while let Ok(cmd) = rx.recv() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            self.stats.commands += 1;
            if self.handle(cmd) {
                return; // Finish processed — shut down.
            }
        }
        // All senders dropped: the shard was killed. Owned tenants are
        // discarded; a restore path rebuilds them from the last snapshot.
    }

    /// Returns `true` when the worker should shut down.
    fn handle(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::AddTenant { id, spec, reply } => {
                let res = if self.tenants.contains_key(&id) {
                    Err(ServiceError::DuplicateTenant(id))
                } else {
                    Tenant::new(spec).map(|t| {
                        self.tenants.insert(id, t);
                    })
                };
                if res.is_err() {
                    self.stats.command_errors += 1;
                }
                let _ = reply.send(res);
            }
            Command::Submit { tenant, arrivals } => {
                self.stats.submits += 1;
                match self.tenants.get_mut(&tenant) {
                    Some(t) => {
                        if t.submit(&arrivals).is_err() {
                            self.stats.command_errors += 1;
                        }
                    }
                    None => self.stats.command_errors += 1,
                }
            }
            Command::Tick => {
                self.stats.ticks += 1;
                let mut latency = LatencyHistogramNs::new();
                for t in self.tenants.values_mut() {
                    let start = Instant::now();
                    if t.tick().is_err() {
                        self.stats.command_errors += 1;
                    }
                    latency.record(start.elapsed().as_nanos() as u64);
                }
                self.stats.step_latency.merge(&latency);
            }
            Command::Snapshot { reply } => {
                let snap = ShardSnapshot {
                    shard: self.stats.shard,
                    tenants: self
                        .tenants
                        .iter()
                        .map(|(&id, t)| (id, t.snapshot()))
                        .collect(),
                };
                let _ = reply.send(snap);
            }
            Command::Stats { reply } => {
                let _ = reply.send(self.current_stats());
            }
            Command::Restore { snapshot, reply } => {
                let res = restore_tenants(snapshot).map(|tenants| {
                    self.tenants = tenants;
                });
                if res.is_err() {
                    self.stats.command_errors += 1;
                }
                let _ = reply.send(res);
            }
            Command::Finish { reply } => {
                let tenants = std::mem::take(&mut self.tenants);
                let mut results = Vec::with_capacity(tenants.len());
                let res = (|| {
                    for (id, t) in tenants {
                        results.push((id, t.finish()?));
                    }
                    Ok(std::mem::take(&mut results))
                })();
                let _ = reply.send(res);
                return true;
            }
        }
        false
    }

    fn current_stats(&self) -> ShardStats {
        let mut s = self.stats.clone();
        s.tenants = self.tenants.len();
        s.queue_depth = self.depth.load(Ordering::Relaxed);
        s.backpressure_waits = self.backpressure.load(Ordering::Relaxed);
        let (mut executed, mut dropped, mut reconfig) = (0, 0, 0);
        for t in self.tenants.values() {
            let p = t.progress();
            executed += p.executed;
            dropped += p.dropped;
            reconfig += p.cost.reconfig;
        }
        s.executed = executed;
        s.dropped = dropped;
        s.reconfig_cost = reconfig;
        s
    }
}

/// Rebuilds the tenants of a [`ShardSnapshot`] (replay + verification per
/// tenant), ready to hand to [`spawn_shard`].
pub fn restore_tenants(
    snapshot: ShardSnapshot,
) -> ServiceResult<BTreeMap<TenantId, Tenant>> {
    let mut tenants = BTreeMap::new();
    for (id, snap) in snapshot.tenants {
        if tenants.insert(id, Tenant::restore(snap)?).is_some() {
            return Err(ServiceError::DuplicateTenant(id));
        }
    }
    Ok(tenants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use rrs_core::ColorTable;

    fn spec() -> TenantSpec {
        TenantSpec::new(PolicySpec::DlruEdf, ColorTable::from_delay_bounds(&[2, 4]), 4, 2)
    }

    #[test]
    fn worker_processes_commands_and_finishes() {
        let h = spawn_shard(0, 4, BTreeMap::new());
        h.add_tenant(7, spec()).unwrap();
        assert!(matches!(
            h.add_tenant(7, spec()),
            Err(ServiceError::DuplicateTenant(7))
        ));
        h.send(Command::Submit { tenant: 7, arrivals: vec![(ColorId(0), 3)] }).unwrap();
        h.send(Command::Tick).unwrap();
        let snap = h.snapshot().unwrap();
        assert_eq!(snap.tenants.len(), 1);
        assert!(snap.conserves_jobs());
        let stats = h.stats().unwrap();
        assert_eq!(stats.ticks, 1);
        assert_eq!(stats.submits, 1);
        let results = h.finish().unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0].1;
        assert_eq!(r.executed + r.dropped_jobs, 3);
    }

    #[test]
    fn kill_then_restore_continues_from_snapshot() {
        let h = spawn_shard(1, 4, BTreeMap::new());
        h.add_tenant(1, spec()).unwrap();
        for _ in 0..5 {
            h.send(Command::Submit { tenant: 1, arrivals: vec![(ColorId(1), 2)] }).unwrap();
            h.send(Command::Tick).unwrap();
        }
        let snap = h.snapshot().unwrap();
        h.kill();
        let rebuilt = restore_tenants(snap.clone()).unwrap();
        let h2 = spawn_shard(1, 4, rebuilt);
        let snap2 = h2.snapshot().unwrap();
        assert_eq!(snap2, snap, "restored shard state is bit-identical");
        let results = h2.finish().unwrap();
        assert_eq!(results[0].1.executed + results[0].1.dropped_jobs, 10);
    }

    #[test]
    fn send_to_dead_shard_reports_shard_down() {
        let ShardHandle { shard, tx, depth, backpressure, join } =
            spawn_shard(2, 4, BTreeMap::new());
        let (reply_tx, reply_rx) = sync_channel(1);
        depth.fetch_add(1, Ordering::Relaxed);
        tx.send(Command::Finish { reply: reply_tx }).unwrap();
        reply_rx.recv().unwrap().unwrap();
        join.join().unwrap(); // worker exited; its receiver is gone
        let dead = ShardHandle { shard, tx, depth, backpressure, join: std::thread::spawn(|| {}) };
        assert!(matches!(dead.send(Command::Tick), Err(ServiceError::ShardDown(2))));
    }
}
