//! Automatic shard supervision: checkpoint + WAL recovery, fault detection,
//! bounded retries, and overload shedding.
//!
//! A [`Supervisor`] owns its shard workers the way [`crate::Service`] does,
//! but journals every state-changing command into a per-shard [`Wal`] before
//! enqueueing it and takes periodic validated [`Checkpoint`]s. When a worker
//! dies (panic captured by the worker's `catch_unwind`, detected through
//! join-handle monitoring, send failures or reply deadlines) the supervisor
//! rebuilds the shard automatically: restore the newest checkpoint
//! (replay-verified), re-apply the WAL suffix, respawn the worker —
//! bit-identical to a run that never failed, because every policy is
//! deterministic and the WAL holds every command, including those lost in
//! the dead worker's queue.
//!
//! Overload degrades gracefully instead of stalling: a full shard queue past
//! [`ShedConfig::queue_watermark`] or a tenant inbox past
//! [`ShedConfig::inbox_watermark`] turns arrivals into counted
//! **service-level drops** (the paper's unit drop cost applied at the door)
//! rather than blocking the caller; [`crate::ServiceStats`] reports shed
//! counts per tenant. Cross-shard commands that need a reply retry with
//! deadline-aware exponential backoff, bounded by
//! [`RetryPolicy::attempts`], and surface as typed
//! [`ServiceError::Timeout`] / [`ServiceError::ShardDown`] instead of
//! unwraps or hangs.

use crate::error::{ServiceError, ServiceResult};
use crate::faults::{self, FaultPlan, ShardFaults};
use crate::service::shard_for;
use crate::shard::{
    restore_tenants, spawn_shard_with, Command, ShardHandle, ShardSnapshot, TenantId,
    WorkerConfig,
};
use crate::stats::ServiceStats;
use crate::storage::{MemoryBackend, ShardStore, StorageBackend};
use crate::tenant::{Tenant, TenantSpec};
use crate::wal::{replay, Checkpoint, WalRecord};
use rrs_core::{ColorId, RunResult};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A journaled submit batch (per-tenant arrival lists) plus the WAL length
/// after the append, as produced by `journal_pending`.
type JournaledBatch = (Vec<(TenantId, Vec<(ColorId, u64)>)>, u64);

/// Bounded-retry parameters for cross-shard commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per command (1 = no retry).
    pub attempts: u32,
    /// Per-attempt deadline covering enqueue + reply.
    pub op_timeout: Duration,
    /// Base backoff between attempts; doubles per retry, capped at
    /// `op_timeout` so the worst case stays within
    /// `attempts × 2 × op_timeout`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            op_timeout: Duration::from_secs(2),
            backoff: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// The pause before retry `attempt` (1-based): the doubling backoff
    /// capped at `op_timeout`, with a deterministic seeded jitter drawn
    /// from `[base/2, base]` so callers retrying in unison (one seed per
    /// shard) desynchronize instead of hammering the same instant. Pure,
    /// so tests can pin bounds and determinism.
    pub fn backoff_for(&self, attempt: u32, seed: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let base = self.backoff.saturating_mul(1u32 << exp).min(self.op_timeout);
        faults::jittered(base, seed, u64::from(attempt))
    }
}

/// Restart-storm circuit breaker parameters (see
/// [`Supervisor::set_breaker`]). A shard that keeps dying faster than it
/// can do useful work trips its breaker **open**: the supervisor stops
/// rebuilding it, sheds its traffic with per-tenant accounting, and only
/// after `cooldown` tick epochs spawns a **half-open** probe worker. The
/// breaker closes again once the probe survives `probes` consecutive
/// healthy epochs; a failure while half-open reopens it immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Trip open when a shard accumulates this many recoveries within
    /// `window` tick epochs.
    pub trip_after: u32,
    /// Sliding recovery-history window, in tick epochs.
    pub window: u64,
    /// Tick epochs an open breaker sheds before the half-open probe.
    pub cooldown: u64,
    /// Consecutive healthy epochs required to close from half-open.
    pub probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { trip_after: 3, window: 16, cooldown: 8, probes: 2 }
    }
}

/// Per-shard breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Normal operation; recoveries rebuild the shard.
    Closed,
    /// Tripped at epoch `since`: no rebuilds, traffic sheds.
    Open {
        /// The supervisor clock when the breaker tripped.
        since: u64,
    },
    /// A probe worker is running; `healthy` epochs survived so far.
    HalfOpen {
        /// Healthy epochs the probe has survived.
        healthy: u32,
    },
}

/// Load-shedding watermarks (both default to off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedConfig {
    /// Shed a tenant's submit when its shard queue holds at least this many
    /// commands (checked supervisor-side, before journaling).
    pub queue_watermark: Option<usize>,
    /// Shed the jobs that would push a tenant's inbox past this many
    /// buffered jobs (applied inside the worker and during WAL replay, so
    /// recovery reproduces the same shedding decisions).
    pub inbox_watermark: Option<u64>,
}

/// How submits travel from the supervisor to the shard workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IngestMode {
    /// Every submit is journaled and enqueued as its own command (the
    /// pre-batching path, kept as the conformance oracle).
    PerCommand,
    /// Submits buffer supervisor-side per shard and ride into the worker as
    /// one [`Command::SubmitBatch`] per tick epoch: one WAL group commit
    /// and one enqueue instead of `N`, acknowledged by epoch sequence.
    /// Ticks additionally fan out to all shards before joining on applied
    /// offsets, overlapping the shards' round execution.
    #[default]
    Batched,
}

/// Supervisor topology and robustness parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Number of shard workers.
    pub shards: usize,
    /// Bounded command-queue capacity per shard.
    pub queue_capacity: usize,
    /// Ticks between checkpoints (0 = only the genesis checkpoint; recovery
    /// then replays the whole WAL).
    pub checkpoint_every: u64,
    /// Retry/backoff/deadline policy for reply-bearing commands.
    pub retry: RetryPolicy,
    /// Overload shedding watermarks.
    pub shed: ShedConfig,
    /// Submit transport (batched group commit vs one command per submit).
    pub ingest: IngestMode,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            shards: 4,
            queue_capacity: 128,
            checkpoint_every: 32,
            retry: RetryPolicy::default(),
            shed: ShedConfig::default(),
            ingest: IngestMode::default(),
        }
    }
}

/// One recovery, for the record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// The rebuilt shard.
    pub shard: usize,
    /// Why the supervisor intervened (detection path + captured panic).
    pub cause: String,
    /// WAL records replayed past the checkpoint.
    pub replayed: u64,
}

/// Per-shard supervision state.
struct Seat {
    handle: ShardHandle,
    /// The shard's journal + checkpoint retention (memory or disk). The
    /// store keeps the newest checkpoints for fallback, so one corrupted
    /// checkpoint cannot brick the shard.
    store: Box<dyn ShardStore>,
    /// Tick records journaled over the shard's lifetime (including ticks
    /// recovered from a previous process under the disk backend).
    ticks: u64,
    /// Batched-mode submit buffer for the current tick epoch, in submission
    /// order (a tenant may appear more than once; order is what makes
    /// mid-batch shedding replay bit-identically).
    pending: Vec<(TenantId, Vec<(ColorId, u64)>)>,
    recoveries: u64,
    checkpoints_rejected: u64,
    faults: Arc<ShardFaults>,
    /// Circuit-breaker state (always `Closed` unless a breaker is
    /// installed via [`Supervisor::set_breaker`]).
    breaker: BreakerState,
    /// Supervisor-clock epochs of recent recoveries, pruned to the breaker
    /// window.
    recovery_clock: VecDeque<u64>,
    /// Times this shard's breaker tripped open.
    trips: u64,
}

/// A sharded multi-tenant scheduler service that survives worker death,
/// stalls and overload automatically. Same tenant routing as
/// [`crate::Service`] (`hash(tenant id) % shards`).
pub struct Supervisor {
    config: SupervisorConfig,
    seats: Vec<Seat>,
    backend: Box<dyn StorageBackend>,
    /// Tenant directory: id → shard.
    tenants: BTreeMap<TenantId, usize>,
    /// Queue-watermark sheds, attributed per tenant (inbox-watermark sheds
    /// live in the tenants themselves and survive recovery via snapshots).
    /// Supervisor-side state only: not journaled, so a cold start resets it.
    queue_shed: BTreeMap<TenantId, u64>,
    events: Vec<RecoveryEvent>,
    /// Restart-storm circuit breaker, off unless installed.
    breaker: Option<BreakerConfig>,
    /// Tick-epoch clock driving breaker windows and cooldowns.
    clock: u64,
}

impl Supervisor {
    /// Starts `config.shards` supervised empty shard workers.
    pub fn new(config: SupervisorConfig) -> ServiceResult<Self> {
        Supervisor::with_faults(config, &FaultPlan::none())
    }

    /// Starts a supervisor whose workers run under a deterministic
    /// [`FaultPlan`] — the chaos-testing entry point.
    pub fn with_faults(config: SupervisorConfig, plan: &FaultPlan) -> ServiceResult<Self> {
        Supervisor::with_storage(config, plan, Box::new(MemoryBackend::new()))
    }

    /// Starts a supervisor over an explicit storage backend, performing
    /// **cold-start recovery**: every shard is rebuilt from its store's
    /// newest valid checkpoint plus WAL-suffix replay before its worker
    /// spawns. For a fresh [`MemoryBackend`] this degenerates to an empty
    /// start; for a [`crate::DiskBackend`] over an existing data directory
    /// it resurrects the whole service, bit-identical to the committed
    /// prefix of the previous process's run.
    pub fn with_storage(
        config: SupervisorConfig,
        plan: &FaultPlan,
        mut backend: Box<dyn StorageBackend>,
    ) -> ServiceResult<Self> {
        let shards = config.shards.max(1);
        let config = SupervisorConfig { shards, ..config };
        let fault_state = plan.per_shard(shards);
        let mut seats = Vec::with_capacity(shards);
        let mut tenants_dir: BTreeMap<TenantId, usize> = BTreeMap::new();
        let mut events = Vec::new();
        for (shard, faults) in fault_state.into_iter().enumerate() {
            let store = backend.open_shard(shard, Arc::clone(&faults))?;
            // Newest checkpoint first, older ones as fallback — the same
            // ladder recover() climbs, but sourced from the (possibly
            // crash-repaired) store.
            let mut restored: Option<(BTreeMap<TenantId, Tenant>, u64, u64)> = None;
            let mut last_err = ServiceError::ShardDown(shard);
            for ck in store.checkpoints().iter().rev() {
                let suffix = store.records_from(ck.wal_offset);
                let outcome = restore_tenants(ck.snapshot.clone()).and_then(|mut tenants| {
                    replay(&mut tenants, suffix.iter(), config.shed.inbox_watermark).map(
                        |replayed| {
                            let ticks = ck.ticks
                                + suffix
                                    .iter()
                                    .filter(|r| matches!(r, WalRecord::Tick))
                                    .count() as u64;
                            (tenants, replayed, ticks)
                        },
                    )
                });
                match outcome {
                    Ok(done) => {
                        restored = Some(done);
                        break;
                    }
                    Err(e) => last_err = e,
                }
            }
            let Some((tenants, replayed, ticks)) = restored else {
                return Err(last_err);
            };
            for &id in tenants.keys() {
                tenants_dir.insert(id, shard);
            }
            if store.end() > 0 {
                events.push(RecoveryEvent {
                    shard,
                    cause: "cold start from durable storage".into(),
                    replayed,
                });
            }
            let handle = spawn_shard_with(
                Supervisor::worker_config(&config, shard, ticks, store.end()),
                Arc::clone(&faults),
                tenants,
            )?;
            seats.push(Seat {
                handle,
                store,
                ticks,
                pending: Vec::new(),
                recoveries: 0,
                checkpoints_rejected: 0,
                faults,
                breaker: BreakerState::Closed,
                recovery_clock: VecDeque::new(),
                trips: 0,
            });
        }
        Ok(Supervisor {
            config,
            seats,
            backend,
            tenants: tenants_dir,
            queue_shed: BTreeMap::new(),
            events,
            breaker: None,
            clock: 0,
        })
    }

    fn worker_config(
        config: &SupervisorConfig,
        shard: usize,
        ticks_done: u64,
        applied_start: u64,
    ) -> WorkerConfig {
        WorkerConfig {
            shard,
            queue_capacity: config.queue_capacity,
            inbox_watermark: config.shed.inbox_watermark,
            ticks_done,
            applied_start,
        }
    }

    /// The supervisor topology.
    pub fn config(&self) -> SupervisorConfig {
        self.config
    }

    /// The shard a tenant id maps to.
    pub fn shard_of(&self, id: TenantId) -> usize {
        shard_for(id, self.seats.len())
    }

    /// Shard rebuilds so far, across all shards.
    pub fn recoveries(&self) -> u64 {
        self.seats.iter().map(|s| s.recoveries).sum()
    }

    /// Checkpoints rejected by validation (corrupted snapshot replies).
    pub fn checkpoints_rejected(&self) -> u64 {
        self.seats.iter().map(|s| s.checkpoints_rejected).sum()
    }

    /// Installs a restart-storm circuit breaker. Kept out of
    /// [`SupervisorConfig`] so the many existing construction sites stay
    /// untouched; call right after construction, before driving traffic.
    pub fn set_breaker(&mut self, config: BreakerConfig) {
        self.breaker = Some(config);
    }

    /// Breaker trips so far, across all shards.
    pub fn breaker_trips(&self) -> u64 {
        self.seats.iter().map(|s| s.trips).sum()
    }

    /// Whether `shard`'s breaker is currently open (shedding, not
    /// rebuilding).
    pub fn breaker_open(&self, shard: usize) -> bool {
        self.seats
            .get(shard)
            .is_some_and(|s| matches!(s.breaker, BreakerState::Open { .. }))
    }

    /// Decides whether a failure on `shard` should skip the rebuild:
    /// records the recovery in the sliding window, trips the breaker on a
    /// storm, and reopens immediately when a half-open probe fails.
    /// Returns `true` when the shard is (now) open and must not rebuild.
    fn breaker_gate(&mut self, shard: usize, cause: &str) -> bool {
        let Some(cfg) = self.breaker else { return false };
        match self.seats[shard].breaker {
            BreakerState::Open { .. } => return true,
            BreakerState::HalfOpen { .. } => {
                self.trip(shard, format!("{cause}; half-open probe failed, breaker reopened"));
                return true;
            }
            BreakerState::Closed => {}
        }
        let clock = self.clock;
        let seat = &mut self.seats[shard];
        seat.recovery_clock.push_back(clock);
        while seat
            .recovery_clock
            .front()
            .is_some_and(|&t| clock.saturating_sub(t) > cfg.window)
        {
            seat.recovery_clock.pop_front();
        }
        if (seat.recovery_clock.len() as u32) < cfg.trip_after {
            return false;
        }
        let n = seat.recovery_clock.len();
        self.trip(
            shard,
            format!("{cause}; restart storm ({n} recoveries in {} epochs), breaker opened", cfg.window),
        );
        true
    }

    /// Opens `shard`'s breaker: sheds the un-journaled submit buffer with
    /// per-tenant accounting (journaled records replay at the eventual
    /// probe rebuild, so they must NOT be shed) and logs the trip.
    fn trip(&mut self, shard: usize, cause: String) {
        let shed = self.shed_pending(shard);
        self.seats[shard].breaker = BreakerState::Open { since: self.clock };
        self.seats[shard].trips += 1;
        self.events.push(RecoveryEvent {
            shard,
            cause: format!("{cause}; shed {shed} buffered jobs"),
            replayed: 0,
        });
    }

    /// Sheds `shard`'s buffered (not yet journaled) submits into the
    /// per-tenant shed ledger, returning the job count.
    fn shed_pending(&mut self, shard: usize) -> u64 {
        let pending = std::mem::take(&mut self.seats[shard].pending);
        let mut shed = 0;
        for (id, arrivals) in pending {
            let jobs: u64 = arrivals.iter().map(|&(_, k)| k).sum();
            shed += jobs;
            *self.queue_shed.entry(id).or_insert(0) += jobs;
        }
        shed
    }

    /// Advances `shard`'s breaker one epoch: an open breaker whose cooldown
    /// has elapsed rebuilds the shard as a half-open probe.
    fn breaker_step(&mut self, shard: usize) -> ServiceResult<()> {
        let Some(cfg) = self.breaker else { return Ok(()) };
        if let BreakerState::Open { since } = self.seats[shard].breaker {
            if self.clock.saturating_sub(since) >= cfg.cooldown {
                self.probe(shard)?;
            }
        }
        Ok(())
    }

    /// Rebuilds an open shard and moves its breaker to half-open.
    fn probe(&mut self, shard: usize) -> ServiceResult<()> {
        self.rebuild(shard, "breaker half-open probe")?;
        self.seats[shard].breaker = BreakerState::HalfOpen { healthy: 0 };
        Ok(())
    }

    /// Paths that *must* have an answer from `shard` (stats, snapshots,
    /// finish, registration) force an early half-open probe instead of
    /// waiting out the cooldown.
    fn force_probe(&mut self, shard: usize) -> ServiceResult<()> {
        if self.breaker_open(shard) {
            self.probe(shard)?;
        }
        Ok(())
    }

    /// Credits `shard` with one healthy epoch; a half-open breaker closes
    /// after the configured probe window.
    fn breaker_note_healthy(&mut self, shard: usize) {
        let Some(cfg) = self.breaker else { return };
        if let BreakerState::HalfOpen { healthy } = self.seats[shard].breaker {
            let healthy = healthy + 1;
            if healthy >= cfg.probes {
                self.seats[shard].breaker = BreakerState::Closed;
                self.seats[shard].recovery_clock.clear();
                self.events.push(RecoveryEvent {
                    shard,
                    cause: "circuit breaker closed after healthy probe window".into(),
                    replayed: 0,
                });
            } else {
                self.seats[shard].breaker = BreakerState::HalfOpen { healthy };
            }
        }
    }

    /// Storage-tier counters, without the shard round-trips of
    /// [`Supervisor::stats`].
    pub fn storage_stats(&self) -> crate::storage::StorageStats {
        self.backend.stats()
    }

    /// Per-shard WAL frontiers: entry `i` is one past the offset of the
    /// last record staged on shard `i`'s store — the epoch sequence
    /// (`seq = offset + 1`) that shard's tick acknowledgement carries.
    /// After [`Supervisor::tick`] returns under batched ingestion the
    /// frontier is both durable (group commit + ack barrier) and applied
    /// (epoch join), which is what makes it the wire-level ack for the
    /// network server.
    pub fn wal_ends(&self) -> Vec<u64> {
        self.seats.iter().map(|seat| seat.store.end()).collect()
    }

    /// Tick epochs journaled for one shard over its lifetime — including
    /// epochs recovered from durable storage at cold start. Crash-recovery
    /// tests use this to know how far each shard's committed prefix reaches
    /// (shards can land on different epochs when a crash interrupts the
    /// per-shard group commits mid-broadcast).
    pub fn shard_ticks(&self, shard: usize) -> ServiceResult<u64> {
        self.seats
            .get(shard)
            .map(|s| s.ticks)
            .ok_or(ServiceError::UnknownShard(shard))
    }

    /// The recovery log, in order of occurrence.
    pub fn recovery_events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Registers a tenant on its home shard.
    ///
    /// The registration is validated supervisor-side (duplicate id, engine
    /// construction) **before** it is journaled, so a WAL never replays a
    /// failing `AddTenant`.
    pub fn add_tenant(&mut self, id: TenantId, spec: TenantSpec) -> ServiceResult<()> {
        if self.tenants.contains_key(&id) {
            return Err(ServiceError::DuplicateTenant(id));
        }
        // Proves the spec constructs; the throwaway instance is dropped.
        Tenant::new(spec.clone())?;
        let shard = self.shard_of(id);
        self.force_probe(shard)?;
        self.ensure_live(shard, "liveness check before add_tenant")?;
        // Journal + commit before the send: the acknowledgement below
        // externalizes the registration, so it must be durable first.
        self.seats[shard].store.append(&WalRecord::AddTenant { id, spec: spec.clone() })?;
        self.seats[shard].store.commit()?;
        let sent = self.seats[shard].handle.round_trip_deadline(
            |reply| Command::AddTenant { id, spec, reply },
            self.config.retry.op_timeout,
        );
        match sent {
            Ok(ack) => ack?,
            // Already journaled: recovery replays the registration, so the
            // command is in effect either way.
            Err(ServiceError::Timeout(_)) | Err(ServiceError::ShardDown(_)) => {
                self.recover(shard, "add_tenant did not acknowledge")?;
            }
            Err(e) => return Err(e),
        }
        self.tenants.insert(id, shard);
        Ok(())
    }

    /// Buffers arrivals for a tenant's next tick, shedding instead of
    /// blocking when the shard queue is past the watermark.
    ///
    /// Under [`IngestMode::Batched`] the arrivals park in the shard's seat
    /// until the next flush point (tick, checkpoint, snapshot, stats or
    /// finish), where the whole epoch is journaled as one
    /// [`WalRecord::SubmitBatch`] group commit and enqueued as a single
    /// command. Under [`IngestMode::PerCommand`] each submit is journaled
    /// and enqueued on its own, exactly as before batching.
    pub fn submit(&mut self, id: TenantId, arrivals: Vec<(ColorId, u64)>) -> ServiceResult<()> {
        let &shard = self.tenants.get(&id).ok_or(ServiceError::UnknownTenant(id))?;
        let jobs: u64 = arrivals.iter().map(|&(_, k)| k).sum();
        if jobs == 0 {
            return Ok(());
        }
        // A tripped shard sheds at the door, same accounting as the queue
        // watermark: the jobs never enter the system.
        if self.breaker_open(shard) {
            *self.queue_shed.entry(id).or_insert(0) += jobs;
            return Ok(());
        }
        if let Some(w) = self.config.shed.queue_watermark {
            if self.seats[shard].handle.queue_depth() >= w {
                *self.queue_shed.entry(id).or_insert(0) += jobs;
                return Ok(());
            }
        }
        if self.config.ingest == IngestMode::Batched {
            self.seats[shard].pending.push((id, arrivals));
            return Ok(());
        }
        self.seats[shard]
            .store
            .append(&WalRecord::Submit { tenant: id, arrivals: arrivals.clone() })?;
        self.seats[shard].store.commit()?;
        let deadline = Instant::now() + self.config.retry.op_timeout;
        match self.seats[shard]
            .handle
            .send_deadline(Command::Submit { tenant: id, arrivals, seq: 0 }, deadline)
        {
            Ok(()) => Ok(()),
            // Journaled: the rebuilt shard replays this submit.
            Err(ServiceError::Timeout(_)) | Err(ServiceError::ShardDown(_)) => {
                self.recover(shard, "submit did not enqueue")
            }
            Err(e) => Err(e),
        }
    }

    /// Journals a shard's buffered submits as one [`WalRecord::SubmitBatch`]
    /// append, returning the command to enqueue (`None` when nothing was
    /// buffered). The caller decides the commit boundary: standalone flush
    /// points commit immediately, the batched tick folds the batch and its
    /// tick into a single epoch commit.
    fn journal_pending(
        &mut self,
        shard: usize,
    ) -> ServiceResult<Option<JournaledBatch>> {
        if self.seats[shard].pending.is_empty() {
            return Ok(None);
        }
        let entries = std::mem::take(&mut self.seats[shard].pending);
        let offset = self.seats[shard]
            .store
            .append(&WalRecord::SubmitBatch { entries: entries.clone() })?;
        Ok(Some((entries, offset + 1)))
    }

    /// Flushes a shard's buffered submits as one group commit: a single
    /// [`WalRecord::SubmitBatch`] append + commit, a single
    /// [`Command::SubmitBatch`] enqueue. A dead or saturated worker
    /// triggers recovery — the record is already journaled, so replay
    /// applies the batch either way.
    fn flush_shard(&mut self, shard: usize) -> ServiceResult<()> {
        let Some((entries, seq)) = self.journal_pending(shard)? else {
            return Ok(());
        };
        self.seats[shard].store.commit()?;
        let deadline = Instant::now() + self.config.retry.op_timeout;
        match self.seats[shard]
            .handle
            .send_deadline(Command::SubmitBatch { entries, seq }, deadline)
        {
            Ok(()) => Ok(()),
            Err(ServiceError::Timeout(_)) | Err(ServiceError::ShardDown(_)) => {
                self.recover(shard, "batch did not enqueue")
            }
            Err(e) => Err(e),
        }
    }

    /// Advances every tenant on every shard one round, checkpointing on the
    /// configured cadence.
    ///
    /// Under [`IngestMode::Batched`] the tick **fans out**: every shard
    /// first gets its buffered submit batch and a journaled `Tick` epoch
    /// (phase 1), so all shards execute their rounds concurrently; the
    /// supervisor then joins on each shard's applied WAL offset (phase 2)
    /// and finally takes any due checkpoints (phase 3). A shard that fails
    /// to enqueue or to acknowledge its epoch is rebuilt from checkpoint +
    /// WAL — the journaled records replay, so the epoch applies either way.
    pub fn tick(&mut self) -> ServiceResult<()> {
        if self.config.ingest == IngestMode::Batched {
            return self.tick_batched();
        }
        self.clock += 1;
        for shard in 0..self.seats.len() {
            self.breaker_step(shard)?;
            if self.breaker_open(shard) {
                self.shed_pending(shard);
                continue;
            }
            // Join-handle monitoring: catch a silently dead worker before
            // wasting the queue deadline on it.
            if self.seats[shard].handle.is_finished() {
                self.recover(shard, "worker found dead before tick")?;
                if self.breaker_open(shard) {
                    continue;
                }
            }
            self.seats[shard].store.append(&WalRecord::Tick)?;
            self.seats[shard].store.commit()?;
            self.seats[shard].ticks += 1;
            let deadline = Instant::now() + self.config.retry.op_timeout;
            match self.seats[shard].handle.send_deadline(Command::Tick { seq: 0 }, deadline) {
                Ok(()) => self.breaker_note_healthy(shard),
                Err(ServiceError::Timeout(_)) | Err(ServiceError::ShardDown(_)) => {
                    self.recover(shard, "tick did not enqueue")?;
                    continue; // the replay applied this tick; skip checkpoint
                }
                Err(e) => return Err(e),
            }
            let every = self.config.checkpoint_every;
            if every > 0 && self.seats[shard].ticks.is_multiple_of(every) {
                self.checkpoint(shard)?;
            }
        }
        Ok(())
    }

    /// The batched tick epoch: broadcast, join, checkpoint.
    fn tick_batched(&mut self) -> ServiceResult<()> {
        self.clock += 1;
        // Phase 1 — broadcast: journal each shard's submit batch *and* its
        // tick, start making both durable with ONE pipelined group commit
        // (the epoch fsync runs in the background; the ack barrier in
        // phase 2 waits for it), then enqueue both commands without
        // waiting. All shards overlap their round execution from here.
        let mut joins: Vec<Option<u64>> = vec![None; self.seats.len()];
        for (shard, join) in joins.iter_mut().enumerate() {
            self.breaker_step(shard)?;
            if self.breaker_open(shard) {
                self.shed_pending(shard);
                continue;
            }
            self.ensure_live(shard, "worker found dead before tick")?;
            if self.breaker_open(shard) {
                continue;
            }
            let batch = self.journal_pending(shard)?;
            let offset = self.seats[shard].store.append(&WalRecord::Tick)?;
            self.seats[shard].store.commit_begin()?;
            self.seats[shard].ticks += 1;
            let seq = offset + 1;
            if let Some((entries, batch_seq)) = batch {
                let deadline = Instant::now() + self.config.retry.op_timeout;
                match self.seats[shard]
                    .handle
                    .send_deadline(Command::SubmitBatch { entries, seq: batch_seq }, deadline)
                {
                    Ok(()) => {}
                    Err(ServiceError::Timeout(_)) | Err(ServiceError::ShardDown(_)) => {
                        // Both records are journaled: recovery replays the
                        // batch and the tick together, no sends or join.
                        self.recover(shard, "batch did not enqueue")?;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            let deadline = Instant::now() + self.config.retry.op_timeout;
            match self.seats[shard].handle.send_deadline(Command::Tick { seq }, deadline) {
                Ok(()) => *join = Some(seq),
                Err(ServiceError::Timeout(_)) | Err(ServiceError::ShardDown(_)) => {
                    // Journaled: recovery replays the tick, no join needed.
                    self.recover(shard, "tick did not enqueue")?;
                }
                Err(e) => return Err(e),
            }
        }
        // Phase 2 — join: wait for every shard's applied offset to reach
        // its tick epoch, then hold the **ack barrier**: the epoch's
        // background fsync must land before this tick returns and
        // externalizes the epoch. Shards that needed recovery in phase 1
        // replayed the epoch synchronously and skip the applied join.
        for (shard, join) in joins.iter().enumerate() {
            if let Some(seq) = *join {
                let deadline = Instant::now() + self.config.retry.op_timeout;
                match self.seats[shard].handle.wait_applied(seq, deadline) {
                    Ok(()) => self.breaker_note_healthy(shard),
                    Err(ServiceError::Timeout(_)) | Err(ServiceError::ShardDown(_)) => {
                        self.recover(shard, "tick epoch was not acknowledged")?;
                    }
                    Err(e) => return Err(e),
                }
            }
            self.seats[shard].store.commit_wait()?;
        }
        // Phase 3 — checkpoints, on the journaled-tick cadence. Open
        // shards have no worker to snapshot; they checkpoint after the
        // probe rebuild catches them up.
        let every = self.config.checkpoint_every;
        if every > 0 {
            for shard in 0..self.seats.len() {
                if self.breaker_open(shard) {
                    continue;
                }
                if self.seats[shard].ticks.is_multiple_of(every) {
                    self.checkpoint(shard)?;
                }
            }
        }
        Ok(())
    }

    /// Takes, validates and adopts a checkpoint of one shard now. A corrupt
    /// snapshot reply is rejected (the previous checkpoints stay); a dead or
    /// stalled worker triggers recovery instead.
    pub fn checkpoint(&mut self, shard: usize) -> ServiceResult<()> {
        if shard >= self.seats.len() {
            return Err(ServiceError::UnknownShard(shard));
        }
        self.force_probe(shard)?;
        // Any buffered submits must be journaled before the offset is
        // captured, or the checkpoint would claim to cover them.
        self.flush_shard(shard)?;
        let offset = self.seats[shard].store.end();
        let ticks = self.seats[shard].ticks;
        let snap = match self.seats[shard].handle.round_trip_deadline(
            |reply| Command::Snapshot { reply },
            self.config.retry.op_timeout,
        ) {
            Ok(snap) => snap,
            Err(ServiceError::Timeout(_)) | Err(ServiceError::ShardDown(_)) => {
                return self.recover(shard, "checkpoint snapshot did not answer");
            }
            Err(e) => return Err(e),
        };
        if let Err(e) = self.validate_checkpoint(shard, &snap) {
            self.seats[shard].checkpoints_rejected += 1;
            self.events.push(RecoveryEvent {
                shard,
                cause: format!("checkpoint rejected: {e}"),
                replayed: 0,
            });
            return Ok(());
        }
        // Adoption delegates retention + WAL garbage collection (and, on
        // disk, the durable checkpoint file write) to the store.
        self.seats[shard]
            .store
            .put_checkpoint(Checkpoint { snapshot: snap, wal_offset: offset, ticks })
    }

    /// Cheap structural validation of a would-be checkpoint: topology,
    /// routing, job conservation, and agreement with the tenant directory.
    /// (Full replay verification happens at recovery, with fallback.)
    fn validate_checkpoint(&self, shard: usize, snap: &ShardSnapshot) -> ServiceResult<()> {
        if snap.shard != shard {
            return Err(ServiceError::Corrupt(format!(
                "snapshot claims shard {}, expected {shard}",
                snap.shard
            )));
        }
        snap.validate(self.seats.len(), |id| shard_for(id, self.seats.len()))?;
        for (id, _) in &snap.tenants {
            if self.tenants.get(id) != Some(&shard) {
                return Err(ServiceError::UnknownTenant(*id));
            }
        }
        Ok(())
    }

    /// Handles a shard failure: normally rebuilds from checkpoint + WAL,
    /// but when an installed circuit breaker detects a restart storm the
    /// shard is left down (open breaker) and its traffic sheds until a
    /// half-open probe succeeds — a permanently dying shard costs a bounded
    /// number of respawns instead of one per epoch.
    fn recover(&mut self, shard: usize, cause: &str) -> ServiceResult<()> {
        if self.breaker_gate(shard, cause) {
            return Ok(());
        }
        self.rebuild(shard, cause)
    }

    /// Rebuilds a dead, stalled or misbehaving shard from its newest
    /// checkpoint plus the WAL suffix, falling back to older checkpoints if
    /// replay verification reports divergence. The old worker is abandoned,
    /// never joined — a stalled thread cannot hang the supervisor.
    fn rebuild(&mut self, shard: usize, cause: &str) -> ServiceResult<()> {
        let panic_msg = self.seats[shard].handle.panic_message();
        let seat = &self.seats[shard];
        let mut rebuilt: Option<(BTreeMap<TenantId, Tenant>, u64)> = None;
        let mut last_err = ServiceError::ShardDown(shard);
        for ck in seat.store.checkpoints().iter().rev() {
            // The store's retained window includes staged-but-uncommitted
            // records, so worker-death recovery never loses the tail the
            // live supervisor already externalized.
            let suffix = seat.store.records_from(ck.wal_offset);
            let restored = restore_tenants(ck.snapshot.clone()).and_then(|mut tenants| {
                replay(&mut tenants, suffix.iter(), self.config.shed.inbox_watermark)
                    .map(|replayed| (tenants, replayed))
            });
            match restored {
                Ok(done) => {
                    rebuilt = Some(done);
                    break;
                }
                Err(e) => last_err = e,
            }
        }
        let Some((tenants, replayed)) = rebuilt else {
            return Err(last_err);
        };
        // Replay covered the whole retained WAL, so the respawned worker
        // starts with every journaled record already applied.
        let replacement = spawn_shard_with(
            Supervisor::worker_config(
                &self.config,
                shard,
                self.seats[shard].ticks,
                self.seats[shard].store.end(),
            ),
            Arc::clone(&self.seats[shard].faults),
            tenants,
        )?;
        let old = std::mem::replace(&mut self.seats[shard].handle, replacement);
        old.abandon();
        self.seats[shard].recoveries += 1;
        let cause = match panic_msg {
            Some(msg) => format!("{cause}; worker panicked: {msg}"),
            None => cause.to_string(),
        };
        self.events.push(RecoveryEvent { shard, cause, replayed });
        Ok(())
    }

    /// Recovers `shard` if its worker thread has exited.
    fn ensure_live(&mut self, shard: usize, cause: &str) -> ServiceResult<()> {
        if self.seats[shard].handle.is_finished() {
            self.recover(shard, cause)?;
        }
        Ok(())
    }

    /// Runs a reply-bearing command against a shard with bounded retries:
    /// each timeout or dead worker triggers a recovery, then a
    /// seeded-jittered exponentially backed-off retry (capped at the op
    /// deadline), up to [`RetryPolicy::attempts`].
    fn with_retry<T>(
        &mut self,
        shard: usize,
        what: &str,
        op: impl Fn(&ShardHandle, Duration) -> ServiceResult<T>,
    ) -> ServiceResult<T> {
        let RetryPolicy { attempts, op_timeout, .. } = self.config.retry;
        let mut last = ServiceError::ShardDown(shard);
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.config.retry.backoff_for(attempt, shard as u64));
            }
            match op(&self.seats[shard].handle, op_timeout) {
                Ok(v) => return Ok(v),
                Err(e @ (ServiceError::Timeout(_) | ServiceError::ShardDown(_))) => {
                    last = e;
                    self.recover(shard, what)?;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Captures one shard's state (with retry + recovery).
    pub fn snapshot_shard(&mut self, shard: usize) -> ServiceResult<ShardSnapshot> {
        if shard >= self.seats.len() {
            return Err(ServiceError::UnknownShard(shard));
        }
        self.force_probe(shard)?;
        // The snapshot must see buffered submits (queue order guarantees the
        // worker applies the batch before answering).
        self.flush_shard(shard)?;
        self.with_retry(shard, "snapshot did not answer", |h, t| {
            h.round_trip_deadline(|reply| Command::Snapshot { reply }, t)
        })
    }

    /// Collects service-wide counters; shed counts are per tenant
    /// (inbox-watermark sheds from the tenants themselves, queue-watermark
    /// sheds from the supervisor's ledger) and each shard carries its
    /// recovery count.
    pub fn stats(&mut self) -> ServiceResult<ServiceStats> {
        let mut shards = Vec::new();
        let mut tenants = Vec::new();
        for shard in 0..self.seats.len() {
            self.force_probe(shard)?;
            self.flush_shard(shard)?;
            let mut s = self.with_retry(shard, "stats did not answer", |h, t| {
                h.round_trip_deadline(|reply| Command::Stats { reply }, t)
            })?;
            let snap = self.snapshot_shard(shard)?;
            s.recoveries = self.seats[shard].recoveries;
            s.breaker_trips = self.seats[shard].trips;
            for (id, t) in snap.tenants {
                let queue_shed = self.queue_shed.get(&id).copied().unwrap_or(0);
                s.shed_jobs += queue_shed;
                let r = &t.engine.result;
                tenants.push((
                    id,
                    crate::tenant::TenantProgress {
                        rounds: r.rounds,
                        arrived: t.arrived(),
                        executed: r.executed,
                        dropped: r.dropped_jobs,
                        pending: t.engine.pending.total(),
                        inbox: t.inbox.iter().map(|&(_, k)| k).sum(),
                        shed: t.shed + queue_shed,
                        cost: r.cost,
                        reconfig_events: r.reconfig_events,
                    },
                ));
            }
            shards.push(s);
        }
        tenants.sort_by_key(|&(id, _)| id);
        Ok(ServiceStats { shards, tenants, storage: self.backend.stats() })
    }

    /// Drains every tenant to its horizon (with retry + recovery per shard)
    /// and returns the final per-tenant results in ascending tenant order.
    pub fn finish(mut self) -> ServiceResult<BTreeMap<TenantId, RunResult>> {
        let mut results = BTreeMap::new();
        for shard in 0..self.seats.len() {
            self.force_probe(shard)?;
            self.flush_shard(shard)?;
            let finished =
                self.with_retry(shard, "finish did not answer", |h, t| h.finish_timeout(t))?;
            for (id, r) in finished {
                results.insert(id, r);
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Fault, FaultKind};
    use crate::policy::PolicySpec;
    use rrs_core::{ColorId, ColorTable};

    fn spec() -> TenantSpec {
        TenantSpec::new(PolicySpec::DlruEdf, ColorTable::from_delay_bounds(&[2, 4]), 4, 2)
    }

    fn quick_config(shards: usize) -> SupervisorConfig {
        SupervisorConfig {
            shards,
            queue_capacity: 8,
            checkpoint_every: 4,
            retry: RetryPolicy {
                attempts: 3,
                op_timeout: Duration::from_millis(500),
                backoff: Duration::from_millis(1),
            },
            shed: ShedConfig::default(),
            ingest: IngestMode::default(),
        }
    }

    fn drive(sup: &mut Supervisor, tenants: u64, rounds: u64) {
        for round in 0..rounds {
            for id in 0..tenants {
                sup.submit(id, vec![(ColorId((id % 2) as u32), 1 + round % 3)]).unwrap();
            }
            sup.tick().unwrap();
        }
    }

    #[test]
    fn supervised_run_matches_plain_run_without_faults() {
        let mut a = Supervisor::new(quick_config(2)).unwrap();
        let mut b = Supervisor::new(SupervisorConfig {
            checkpoint_every: 0, // genesis-only: recovery would replay all
            ..quick_config(2)
        })
        .unwrap();
        for sup in [&mut a, &mut b] {
            for id in 0..4 {
                sup.add_tenant(id, spec()).unwrap();
            }
            drive(sup, 4, 6);
        }
        assert_eq!(a.finish().unwrap(), b.finish().unwrap());
    }

    #[test]
    fn panic_mid_run_recovers_bit_identically() {
        let mut clean = Supervisor::new(quick_config(2)).unwrap();
        let plan = FaultPlan {
            faults: vec![
                Fault { shard: 0, at_tick: 3, kind: FaultKind::Panic },
                Fault { shard: 1, at_tick: 5, kind: FaultKind::Panic },
            ],
        };
        let mut chaotic = Supervisor::with_faults(quick_config(2), &plan).unwrap();
        for sup in [&mut clean, &mut chaotic] {
            for id in 0..4 {
                sup.add_tenant(id, spec()).unwrap();
            }
            drive(sup, 4, 8);
        }
        assert!(chaotic.recoveries() >= 2, "both injected panics recovered");
        let events = chaotic.recovery_events().to_vec();
        assert!(
            events.iter().any(|e| e.cause.contains("injected fault")),
            "panic message captured: {events:?}"
        );
        assert_eq!(chaotic.finish().unwrap(), clean.finish().unwrap());
    }

    #[test]
    fn corrupted_checkpoint_is_rejected_and_survivable() {
        let plan = FaultPlan {
            faults: vec![
                // Corrupt the first periodic checkpoint (tick 4)...
                Fault { shard: 0, at_tick: 4, kind: FaultKind::CorruptSnapshot },
                // ...then kill the worker so recovery must use older state.
                Fault { shard: 0, at_tick: 6, kind: FaultKind::Panic },
            ],
        };
        let mut clean = Supervisor::new(quick_config(1)).unwrap();
        let mut chaotic = Supervisor::with_faults(quick_config(1), &plan).unwrap();
        for sup in [&mut clean, &mut chaotic] {
            sup.add_tenant(0, spec()).unwrap();
            drive(sup, 1, 10);
        }
        assert_eq!(chaotic.checkpoints_rejected(), 1);
        assert!(chaotic.recoveries() >= 1);
        assert_eq!(chaotic.finish().unwrap(), clean.finish().unwrap());
    }

    #[test]
    fn inbox_watermark_sheds_deterministically() {
        let mut sup = Supervisor::new(SupervisorConfig {
            shed: ShedConfig { inbox_watermark: Some(2), queue_watermark: None },
            ..quick_config(1)
        })
        .unwrap();
        sup.add_tenant(0, spec()).unwrap();
        for _ in 0..5 {
            // 6 jobs per round against a watermark of 2 → 4 shed per round.
            sup.submit(0, vec![(ColorId(0), 6)]).unwrap();
            sup.tick().unwrap();
        }
        let stats = sup.stats().unwrap();
        assert_eq!(stats.shed(), 20);
        assert_eq!(stats.tenants[0].1.shed, 20);
        assert_eq!(stats.tenants[0].1.arrived, 10, "watermark admits 2 per round");
        assert!(stats.conserves_jobs());
        sup.finish().unwrap();
    }

    #[test]
    fn retry_backoff_is_jittered_bounded_and_deterministic() {
        let p = RetryPolicy {
            attempts: 5,
            op_timeout: Duration::from_millis(40),
            backoff: Duration::from_millis(10),
        };
        for attempt in 1..6u32 {
            let base = p.backoff.saturating_mul(1 << (attempt - 1)).min(p.op_timeout);
            for seed in 0..8u64 {
                let d = p.backoff_for(attempt, seed);
                assert!(d >= base / 2 && d <= base, "attempt {attempt} seed {seed}: {d:?}");
                assert_eq!(d, p.backoff_for(attempt, seed), "deterministic per (attempt, seed)");
            }
        }
        assert!(
            (1..6u32).any(|a| p.backoff_for(a, 1) != p.backoff_for(a, 2)),
            "seeds 1 and 2 never diverged"
        );
    }

    #[test]
    fn breaker_bounds_restart_storms_and_accounts_shed() {
        // A shard that panics on every tick: an unguarded supervisor
        // respawns it every epoch.
        let storm = FaultPlan {
            faults: (1..=30)
                .map(|t| Fault { shard: 0, at_tick: t, kind: FaultKind::Panic })
                .collect(),
        };
        let mut unguarded = Supervisor::with_faults(quick_config(1), &storm).unwrap();
        unguarded.add_tenant(0, spec()).unwrap();
        drive(&mut unguarded, 1, 12);
        let unguarded_recoveries = unguarded.recoveries();
        assert!(unguarded_recoveries >= 8, "storm respawns ~every epoch: {unguarded_recoveries}");
        unguarded.finish().unwrap();

        // The breaker trips after 3 recoveries in the window and, with a
        // cooldown longer than the run, never probes during it — so the
        // respawn count is provably bounded by trip_after plus the forced
        // probe at the final stats/finish round-trips.
        let mut guarded = Supervisor::with_faults(quick_config(1), &storm).unwrap();
        guarded.set_breaker(BreakerConfig {
            trip_after: 3,
            window: 64,
            cooldown: 1_000,
            probes: 2,
        });
        guarded.add_tenant(0, spec()).unwrap();
        drive(&mut guarded, 1, 12);
        assert_eq!(guarded.breaker_trips(), 1, "one trip, then the shard stays open");
        assert!(
            guarded.recoveries() <= 4,
            "respawns bounded by trip_after + forced probe: {}",
            guarded.recoveries()
        );
        assert!(guarded.breaker_open(0), "still open before any forced probe");
        let stats = guarded.stats().unwrap();
        assert_eq!(stats.shards[0].breaker_trips, 1);
        assert!(stats.conserves_jobs(), "shed accounting keeps jobs conserved");
        assert!(
            stats.tenants[0].1.shed > 0,
            "traffic to the open shard was shed with accounting"
        );
        assert!(
            guarded
                .recovery_events()
                .iter()
                .any(|e| e.cause.contains("breaker opened")),
            "trip is logged: {:?}",
            guarded.recovery_events()
        );
        guarded.finish().unwrap();
    }

    #[test]
    fn breaker_closes_after_healthy_probe_window() {
        // Three quick deaths trip the breaker; after the cooldown the
        // half-open probe survives (no more armed faults) and the breaker
        // closes, restoring normal service.
        let storm = FaultPlan {
            faults: (1..=3)
                .map(|t| Fault { shard: 0, at_tick: t, kind: FaultKind::Panic })
                .collect(),
        };
        let mut sup = Supervisor::with_faults(quick_config(1), &storm).unwrap();
        sup.set_breaker(BreakerConfig { trip_after: 3, window: 16, cooldown: 2, probes: 2 });
        sup.add_tenant(0, spec()).unwrap();
        drive(&mut sup, 1, 12);
        assert_eq!(sup.breaker_trips(), 1);
        assert!(!sup.breaker_open(0), "probe succeeded and the breaker closed");
        assert!(
            sup.recovery_events()
                .iter()
                .any(|e| e.cause.contains("breaker closed")),
            "close is logged: {:?}",
            sup.recovery_events()
        );
        let stats = sup.stats().unwrap();
        assert!(stats.conserves_jobs());
        sup.finish().unwrap();
    }

    #[test]
    fn duplicate_and_unknown_tenants_are_typed_errors() {
        let mut sup = Supervisor::new(quick_config(2)).unwrap();
        sup.add_tenant(1, spec()).unwrap();
        assert!(matches!(sup.add_tenant(1, spec()), Err(ServiceError::DuplicateTenant(1))));
        assert!(matches!(
            sup.submit(9, vec![(ColorId(0), 1)]),
            Err(ServiceError::UnknownTenant(9))
        ));
        sup.finish().unwrap();
    }
}
