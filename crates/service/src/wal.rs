//! Per-shard write-ahead log and checkpoints.
//!
//! The supervisor is the only sender into a shard's command queue, so it can
//! journal every state-changing command (`AddTenant`, `Submit`,
//! `SubmitBatch`, `Tick`) **before** enqueueing it. Recovery is then pure replay: rebuild the
//! tenants from the newest validated checkpoint (itself replay-verified by
//! [`crate::restore_tenants`]) and apply the WAL suffix past the
//! checkpoint's offset with exactly the worker's own semantics — same
//! per-tenant iteration order, same inbox-watermark shedding rule, same
//! error tolerance. Because every policy is deterministic, the rebuilt shard
//! is bit-identical to one that never failed, including commands that were
//! sitting in the dead worker's queue (they are in the log too).
//!
//! Offsets are absolute record indices since the shard was born, so
//! checkpoints can be truncated away without renumbering.

use crate::error::ServiceResult;
use crate::shard::{ShardSnapshot, TenantId};
use crate::tenant::{Tenant, TenantSpec};
use rrs_core::ColorId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// One journaled state-changing command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A tenant registration.
    AddTenant {
        /// Service-wide tenant id.
        id: TenantId,
        /// The tenant's instance parameters.
        spec: TenantSpec,
    },
    /// Buffered arrivals for one tenant.
    Submit {
        /// Target tenant.
        tenant: TenantId,
        /// `(color, count)` pairs, in submission order.
        arrivals: Vec<(ColorId, u64)>,
    },
    /// Group commit: every submit destined for this shard within one tick
    /// epoch, journaled as a single record. Entries keep submission order
    /// (a tenant may appear more than once), so replay applies the same
    /// per-entry inbox-watermark shedding decisions as `N` separate
    /// `Submit` records would — including shedding that strikes mid-batch.
    SubmitBatch {
        /// `(tenant, arrivals)` in original submission order.
        entries: Vec<(TenantId, Vec<(ColorId, u64)>)>,
    },
    /// One round advanced for every tenant on the shard.
    Tick,
}

/// An append-only command journal with absolute offsets.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    base: u64,
    records: VecDeque<WalRecord>,
}

impl Wal {
    /// An empty log starting at offset 0.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Reassembles a log from recovered parts: `base` is the absolute
    /// offset of `records[0]` (storage backends rebuilding their in-memory
    /// mirror from disk use this; an empty `records` gives an empty log
    /// whose next append lands at `base`).
    pub fn from_parts(base: u64, records: Vec<WalRecord>) -> Self {
        Wal { base, records: records.into() }
    }

    /// The absolute offset one past the last record.
    pub fn end(&self) -> u64 {
        self.base + self.records.len() as u64
    }

    /// Records currently retained (not yet truncated).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the retained window is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record, returning its absolute offset.
    pub fn append(&mut self, record: WalRecord) -> u64 {
        let at = self.end();
        self.records.push_back(record);
        at
    }

    /// Drops every record before absolute offset `to` (clamped to the
    /// retained window) — called once a checkpoint at `to` is durable.
    pub fn truncate_to(&mut self, to: u64) {
        while self.base < to && !self.records.is_empty() {
            self.records.pop_front();
            self.base += 1;
        }
    }

    /// Iterates the records from absolute offset `from` to the end.
    pub fn iter_from(&self, from: u64) -> impl Iterator<Item = &WalRecord> {
        let skip = from.saturating_sub(self.base) as usize;
        self.records.iter().skip(skip)
    }
}

/// A validated shard snapshot plus the WAL offset it corresponds to: the
/// shard's state after exactly `wal_offset` journaled records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The captured state.
    pub snapshot: ShardSnapshot,
    /// Absolute WAL offset at capture time.
    pub wal_offset: u64,
    /// Tick records among the first `wal_offset` (the respawned worker's
    /// starting tick count, so fault arming stays in absolute ticks).
    pub ticks: u64,
}

impl Checkpoint {
    /// The genesis checkpoint: an empty shard at offset 0.
    pub fn genesis(shard: usize) -> Self {
        Checkpoint {
            snapshot: ShardSnapshot { shard, tenants: Vec::new() },
            wal_offset: 0,
            ticks: 0,
        }
    }
}

/// Replays journaled records onto a tenant map with the worker's exact
/// semantics. Returns the number of records applied.
///
/// Mirrors `Worker::handle` case by case: ticks advance tenants in ascending
/// id order, submits go through the same watermark shedding rule, and
/// per-command engine errors are tolerated (the worker counts them and moves
/// on, so replay must too).
pub fn replay<'a>(
    tenants: &mut BTreeMap<TenantId, Tenant>,
    records: impl Iterator<Item = &'a WalRecord>,
    inbox_watermark: Option<u64>,
) -> ServiceResult<u64> {
    let mut applied = 0;
    for record in records {
        match record {
            WalRecord::AddTenant { id, spec } => {
                // The supervisor validates registrations before journaling,
                // so construction errors here mean real corruption.
                tenants.insert(*id, Tenant::new(spec.clone())?);
            }
            WalRecord::Submit { tenant, arrivals } => {
                if let Some(t) = tenants.get_mut(tenant) {
                    let _ = t.submit_shedding(arrivals, inbox_watermark);
                }
            }
            WalRecord::SubmitBatch { entries } => {
                // Entry order is submission order: each entry sheds (or not)
                // against the inbox level left by the entries before it,
                // exactly as the worker applied them.
                for (tenant, arrivals) in entries {
                    if let Some(t) = tenants.get_mut(tenant) {
                        let _ = t.submit_shedding(arrivals, inbox_watermark);
                    }
                }
            }
            WalRecord::Tick => {
                for t in tenants.values_mut() {
                    let _ = t.tick();
                }
            }
        }
        applied += 1;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use rrs_core::ColorTable;

    fn spec() -> TenantSpec {
        TenantSpec::new(PolicySpec::DlruEdf, ColorTable::from_delay_bounds(&[2, 4]), 4, 2)
    }

    #[test]
    fn offsets_survive_truncation() {
        let mut wal = Wal::new();
        for _ in 0..5 {
            wal.append(WalRecord::Tick);
        }
        assert_eq!(wal.end(), 5);
        wal.truncate_to(3);
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.end(), 5, "absolute offsets are stable");
        assert_eq!(wal.iter_from(4).count(), 1);
        assert_eq!(wal.iter_from(0).count(), 2, "clamped to the retained window");
    }

    #[test]
    fn replay_reproduces_a_live_shard() {
        // Drive a map of tenants directly, journaling every step; replaying
        // the journal onto an empty map must land on identical snapshots.
        let mut wal = Wal::new();
        let mut live: BTreeMap<TenantId, Tenant> = BTreeMap::new();
        for id in [1u64, 2] {
            wal.append(WalRecord::AddTenant { id, spec: spec() });
            live.insert(id, Tenant::new(spec()).unwrap());
        }
        for round in 0..6u64 {
            let arrivals = vec![(ColorId((round % 2) as u32), 1 + round % 3)];
            wal.append(WalRecord::Submit { tenant: 1, arrivals: arrivals.clone() });
            live.get_mut(&1).unwrap().submit_shedding(&arrivals, Some(3)).unwrap();
            wal.append(WalRecord::Tick);
            for t in live.values_mut() {
                t.tick().unwrap();
            }
        }
        let mut rebuilt = BTreeMap::new();
        let applied = replay(&mut rebuilt, wal.iter_from(0), Some(3)).unwrap();
        assert_eq!(applied, wal.end());
        assert_eq!(rebuilt.len(), 2);
        for (id, t) in &live {
            assert_eq!(rebuilt[id].snapshot(), t.snapshot(), "tenant {id}");
        }
    }
}
