//! Size-weighted LRU file cache with single-flight load coalescing.
//!
//! Fronts checkpoint and WAL-segment reads in the disk backend. The design
//! follows the idioms of production file caches (see SNIPPETS.md): entries
//! are weighed by byte size rather than counted, eviction walks
//! least-recently-used order until the cache fits its byte budget, and
//! concurrent readers of the same missing key are *coalesced* — exactly one
//! thread performs the load while the rest block on a condvar and share the
//! result. Counters (hits / misses / evictions / coalesced waits) are
//! atomics so a stats snapshot never takes the cache lock.
//!
//! The loader runs **outside** the lock: a slow disk read never blocks hits
//! on other keys. Every in-flight load carries a shared *flight* outcome:
//! waiters that coalesced onto it observe exactly what the loader observed —
//! the loaded bytes, or the load's failure. A failed flight clears the slot
//! on its way out, so the key is never poisoned and the next independent
//! lookup retries with a fresh load.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::{ServiceError, ServiceResult};
use serde::{Deserialize, Serialize};

/// Monotonic counters describing cache behavior since construction.
///
/// Every counter is cumulative, so deltas between two snapshots are
/// meaningful and each field individually never decreases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to load from disk (this thread ran the loader).
    pub misses: u64,
    /// Lookups that blocked on another thread's in-flight load and shared
    /// its outcome — the bytes on success, the error on failure
    /// (single-flight coalescing).
    pub coalesced: u64,
    /// Entries discarded to fit the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub resident_entries: u64,
}

#[derive(Debug)]
enum Slot {
    /// Loaded bytes plus the recency stamp under which they are indexed.
    Ready { bytes: Arc<Vec<u8>>, stamp: u64 },
    /// A load is running on some thread; waiters clone the flight and block
    /// on the condvar until its outcome settles.
    InFlight { flight: Arc<Flight> },
}

/// The shared outcome of one single-flight load: `None` while the loader
/// runs, then exactly what it produced — bytes or error — for every waiter
/// that coalesced onto it.
#[derive(Debug, Default)]
struct Flight {
    outcome: Mutex<Option<Result<Arc<Vec<u8>>, String>>>,
}

impl Flight {
    fn settle(&self, outcome: Result<Arc<Vec<u8>>, String>) {
        *self.outcome.lock().unwrap_or_else(|p| p.into_inner()) = Some(outcome);
    }

    fn peek(&self) -> Option<Result<Arc<Vec<u8>>, String>> {
        self.outcome.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

#[derive(Debug, Default)]
struct CacheState {
    slots: HashMap<PathBuf, Slot>,
    /// Recency index: stamp → key, oldest first. Stamps are unique.
    recency: BTreeMap<u64, PathBuf>,
    next_stamp: u64,
    resident_bytes: u64,
}

/// A byte-budgeted, single-flight, LRU file cache. See the module docs.
#[derive(Debug)]
pub struct FileCache {
    capacity: u64,
    state: Mutex<CacheState>,
    loaded: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl FileCache {
    /// A cache holding at most `capacity` bytes of file contents.
    pub fn new(capacity: u64) -> Self {
        FileCache {
            capacity,
            state: Mutex::new(CacheState::default()),
            loaded: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> ServiceResult<std::sync::MutexGuard<'_, CacheState>> {
        self.state
            .lock()
            .map_err(|_| ServiceError::Storage("file cache poisoned".into()))
    }

    /// Returns the bytes for `key`, loading them via `load` on a miss.
    ///
    /// Concurrent callers for the same missing key coalesce onto a single
    /// `load` invocation and share its outcome — bytes or error; the loader
    /// runs without the cache lock held. A failed flight clears the slot, so
    /// the next independent lookup retries with a fresh load.
    pub fn get_or_load(
        &self,
        key: &Path,
        load: impl FnOnce() -> ServiceResult<Vec<u8>>,
    ) -> ServiceResult<Arc<Vec<u8>>> {
        let flight = {
            let mut state = self.lock()?;
            match state.slots.get(key) {
                Some(Slot::Ready { bytes, stamp }) => {
                    let bytes = Arc::clone(bytes);
                    let old = *stamp;
                    let fresh = state.next_stamp;
                    state.next_stamp += 1;
                    state.recency.remove(&old);
                    state.recency.insert(fresh, key.to_path_buf());
                    if let Some(Slot::Ready { stamp, .. }) = state.slots.get_mut(key) {
                        *stamp = fresh;
                    }
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(bytes);
                }
                Some(Slot::InFlight { flight }) => Arc::clone(flight),
                None => {
                    // This thread is the loader.
                    let flight = Arc::new(Flight::default());
                    state.slots.insert(
                        key.to_path_buf(),
                        Slot::InFlight { flight: Arc::clone(&flight) },
                    );
                    drop(state);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return match load() {
                        Ok(bytes) => {
                            let bytes = Arc::new(bytes);
                            flight.settle(Ok(Arc::clone(&bytes)));
                            self.insert_ready(key, Arc::clone(&bytes))?;
                            self.loaded.notify_all();
                            Ok(bytes)
                        }
                        Err(e) => {
                            flight.settle(Err(e.to_string()));
                            // Clear our own in-flight slot (and only ours)
                            // so the key is never poisoned: the next lookup
                            // starts a fresh flight.
                            let mut state = self.lock()?;
                            if let Some(Slot::InFlight { flight: current }) =
                                state.slots.get(key)
                            {
                                if Arc::ptr_eq(current, &flight) {
                                    state.slots.remove(key);
                                }
                            }
                            drop(state);
                            self.loaded.notify_all();
                            Err(e)
                        }
                    };
                }
            }
        };
        // Coalesced: block until the flight settles, then share its outcome.
        // Exactly one of {hit, miss, coalesced} per lookup.
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        let mut state = self.lock()?;
        loop {
            if let Some(outcome) = flight.peek() {
                return outcome.map_err(|msg| {
                    ServiceError::Storage(format!(
                        "coalesced load of {} failed: {msg}",
                        key.display()
                    ))
                });
            }
            state = self
                .loaded
                .wait(state)
                .map_err(|_| ServiceError::Storage("file cache poisoned".into()))?;
        }
    }

    /// Installs freshly loaded bytes and evicts LRU entries over budget.
    fn insert_ready(&self, key: &Path, bytes: Arc<Vec<u8>>) -> ServiceResult<()> {
        let weight = bytes.len() as u64;
        let mut state = self.lock()?;
        let stamp = state.next_stamp;
        state.next_stamp += 1;
        state.recency.insert(stamp, key.to_path_buf());
        state.resident_bytes += weight;
        state.slots.insert(key.to_path_buf(), Slot::Ready { bytes, stamp });
        // Evict oldest-first until within budget; the entry just inserted is
        // exempt so an oversized single file still gets served (it will be
        // the next victim once anything else lands).
        while state.resident_bytes > self.capacity {
            let victim = state
                .recency
                .iter()
                .map(|(s, k)| (*s, k.clone()))
                .find(|(s, _)| *s != stamp);
            let Some((vstamp, vkey)) = victim else { break };
            state.recency.remove(&vstamp);
            if let Some(Slot::Ready { bytes, .. }) = state.slots.remove(&vkey) {
                state.resident_bytes -= bytes.len() as u64;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Drops `key` if resident (a no-op for absent or in-flight keys —
    /// an in-flight load re-reads the file anyway).
    pub fn invalidate(&self, key: &Path) {
        if let Ok(mut state) = self.state.lock() {
            if let Some(Slot::Ready { bytes, stamp }) = state.slots.get(key) {
                let (weight, stamp) = (bytes.len() as u64, *stamp);
                state.slots.remove(key);
                state.recency.remove(&stamp);
                state.resident_bytes -= weight;
            }
        }
    }

    /// Current counter snapshot (never blocks on in-flight loads).
    pub fn stats(&self) -> CacheStats {
        let (resident_bytes, resident_entries) = match self.state.lock() {
            Ok(state) => (
                state.resident_bytes,
                state.slots.values().filter(|s| matches!(s, Slot::Ready { .. })).count() as u64,
            ),
            Err(_) => (0, 0),
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes,
            resident_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn key(name: &str) -> PathBuf {
        PathBuf::from(name)
    }

    #[test]
    fn hits_after_first_load() {
        let cache = FileCache::new(1024);
        let loads = AtomicUsize::new(0);
        for _ in 0..3 {
            let bytes = cache
                .get_or_load(&key("a"), || {
                    loads.fetch_add(1, Ordering::SeqCst);
                    Ok(vec![1, 2, 3])
                })
                .unwrap();
            assert_eq!(*bytes, vec![1, 2, 3]);
        }
        assert_eq!(loads.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert_eq!(s.resident_bytes, 3);
    }

    #[test]
    fn eviction_is_size_weighted_and_lru_ordered() {
        // Budget 10 bytes; three 4-byte entries can't all fit.
        let cache = FileCache::new(10);
        for name in ["a", "b", "c"] {
            cache.get_or_load(&key(name), || Ok(vec![0u8; 4])).unwrap();
        }
        // "a" was least recent → evicted; "b" and "c" resident.
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_entries, 2);
        assert_eq!(s.resident_bytes, 8);
        // Touch "b", insert "d": the LRU victim is now "c", not "b".
        cache.get_or_load(&key("b"), || panic!("b must be resident")).unwrap();
        cache.get_or_load(&key("d"), || Ok(vec![0u8; 4])).unwrap();
        cache.get_or_load(&key("b"), || panic!("b survived as recent")).unwrap();
        let reloaded = AtomicUsize::new(0);
        cache
            .get_or_load(&key("c"), || {
                reloaded.fetch_add(1, Ordering::SeqCst);
                Ok(vec![0u8; 4])
            })
            .unwrap();
        assert_eq!(reloaded.load(Ordering::SeqCst), 1, "c was the victim");
    }

    #[test]
    fn oversized_entry_is_still_served() {
        let cache = FileCache::new(4);
        let bytes = cache.get_or_load(&key("big"), || Ok(vec![0u8; 100])).unwrap();
        assert_eq!(bytes.len(), 100);
        // It is evicted as soon as another entry lands.
        cache.get_or_load(&key("small"), || Ok(vec![0u8; 2])).unwrap();
        let s = cache.stats();
        assert!(s.evictions >= 1);
        assert!(s.resident_bytes <= 4);
    }

    #[test]
    fn concurrent_readers_coalesce_to_one_load() {
        let cache = Arc::new(FileCache::new(1 << 20));
        let loads = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (cache, loads, gate) = (Arc::clone(&cache), Arc::clone(&loads), Arc::clone(&gate));
            handles.push(std::thread::spawn(move || {
                gate.wait();
                cache
                    .get_or_load(&key("shared"), || {
                        loads.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the other
                        // threads to pile onto the condvar.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok(vec![9u8; 16])
                    })
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(*h.join().unwrap(), vec![9u8; 16]);
        }
        assert_eq!(loads.load(Ordering::SeqCst), 1, "exactly one load ran");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits + s.coalesced, 7, "everyone else shared it");
    }

    #[test]
    fn failed_load_does_not_poison_the_key() {
        let cache = FileCache::new(64);
        let err = cache
            .get_or_load(&key("flaky"), || Err(ServiceError::Storage("boom".into())))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Storage(_)));
        let bytes = cache.get_or_load(&key("flaky"), || Ok(vec![7])).unwrap();
        assert_eq!(*bytes, vec![7]);
    }

    #[test]
    fn failed_flight_propagates_to_every_coalesced_waiter() {
        let cache = Arc::new(FileCache::new(1 << 20));
        let loads = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(6));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let (cache, loads, gate) = (Arc::clone(&cache), Arc::clone(&loads), Arc::clone(&gate));
            handles.push(std::thread::spawn(move || {
                gate.wait();
                cache.get_or_load(&key("doomed"), || {
                    loads.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open so the other threads coalesce
                    // onto it before it fails.
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    Err(ServiceError::Storage("disk fell over".into()))
                })
            }));
        }
        let mut loader_errs = 0;
        let mut coalesced_errs = 0;
        for h in handles {
            match h.join().unwrap() {
                Err(ServiceError::Storage(msg)) if msg.contains("coalesced load") => {
                    assert!(msg.contains("disk fell over"), "waiter sees the cause: {msg}");
                    coalesced_errs += 1;
                }
                Err(ServiceError::Storage(msg)) => {
                    assert_eq!(msg, "disk fell over");
                    loader_errs += 1;
                }
                other => panic!("expected a storage error, got {other:?}"),
            }
        }
        assert_eq!(loads.load(Ordering::SeqCst), 1, "exactly one load ran");
        assert_eq!(loader_errs, 1, "the loader gets the original error");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        // Threads that raced in after the failed flight cleared the slot
        // would become fresh loaders; with the 100ms hold none should, but
        // tolerate scheduler skew by only bounding from below.
        assert!(coalesced_errs >= 1, "at least one waiter coalesced");
        assert_eq!(s.coalesced as usize, coalesced_errs);
        // The key is not poisoned: a clean retry loads fresh bytes.
        let bytes = cache.get_or_load(&key("doomed"), || Ok(vec![3u8; 4])).unwrap();
        assert_eq!(*bytes, vec![3u8; 4]);
    }

    #[test]
    fn stats_counters_are_monotone() {
        let cache = FileCache::new(8);
        let mut prev = cache.stats();
        for i in 0..20u8 {
            let name = format!("k{}", i % 5);
            let _ = cache.get_or_load(&key(&name), || Ok(vec![i; 3]));
            let now = cache.stats();
            assert!(now.hits >= prev.hits);
            assert!(now.misses >= prev.misses);
            assert!(now.coalesced >= prev.coalesced);
            assert!(now.evictions >= prev.evictions);
            assert!(now.resident_bytes <= 8 || now.resident_entries == 1);
            prev = now;
        }
    }

    #[test]
    fn invalidate_forces_a_reload() {
        let cache = FileCache::new(64);
        cache.get_or_load(&key("x"), || Ok(vec![1])).unwrap();
        cache.invalidate(&key("x"));
        assert_eq!(cache.stats().resident_entries, 0);
        let loads = AtomicUsize::new(0);
        cache
            .get_or_load(&key("x"), || {
                loads.fetch_add(1, Ordering::SeqCst);
                Ok(vec![2])
            })
            .unwrap();
        assert_eq!(loads.load(Ordering::SeqCst), 1);
    }
}
