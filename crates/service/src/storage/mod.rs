//! Pluggable durability: the [`StorageBackend`] / [`ShardStore`] traits and
//! their two implementations.
//!
//! The supervisor journals every state-changing command and takes periodic
//! checkpoints; *where those live* is this module's concern:
//!
//! * [`MemoryBackend`] keeps them in process memory — exactly the behavior
//!   the supervisor had before this tier existed. Recovery survives worker
//!   death, not process death.
//! * [`DiskBackend`] keeps them in segmented, CRC32-framed WAL files plus
//!   checkpoint files under a data directory, with group-commit fsync at
//!   the tick-epoch boundary. A cold start rebuilds the whole service from
//!   disk, bit-identical to an uninterrupted in-memory run over the same
//!   committed prefix.
//!
//! Both implement the same narrow contract, so
//! [`crate::Supervisor::with_storage`] — and every conformance test — runs
//! identically over either.
//!
//! ## The commit boundary
//!
//! [`ShardStore::append`] stages a record and assigns its offset;
//! [`ShardStore::commit`] makes everything staged durable. The supervisor
//! calls `commit` once per shard per tick epoch (covering the epoch's
//! `SubmitBatch` *and* its `Tick` in one fsync) **before** the commands are
//! enqueued to the worker — classic write-ahead ordering. Registration
//! (`AddTenant`) commits immediately because its acknowledgement
//! externalizes the result.

mod cache;
mod disk;
pub mod frame;
mod memory;

pub use cache::{CacheStats, FileCache};
pub use disk::{DiskBackend, DiskConfig};
pub use memory::MemoryBackend;

use crate::error::ServiceResult;
use crate::faults::ShardFaults;
use crate::wal::{Checkpoint, WalRecord};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One shard's durable journal + checkpoint retention.
///
/// Offsets are absolute record indices since the shard was born (the same
/// numbering [`crate::Wal`] uses), so checkpoint adoption can garbage-collect
/// old records without renumbering.
pub trait ShardStore: Send {
    /// Stages a record for the next [`commit`](ShardStore::commit) and
    /// returns its absolute offset. The record is immediately visible to
    /// [`records_from`](ShardStore::records_from) (worker-death recovery
    /// must replay it even before it is durable — the supervisor only
    /// externalizes state *after* commit).
    fn append(&mut self, record: &WalRecord) -> ServiceResult<u64>;

    /// Makes every staged record durable (the group-commit fsync boundary).
    /// A no-op when nothing is staged, and for memory-backed stores.
    fn commit(&mut self) -> ServiceResult<()>;

    /// Starts making the staged records durable without waiting for the
    /// fsync to land (pipelined group commit). A caller that externalizes
    /// state on return **must** pair this with
    /// [`commit_wait`](ShardStore::commit_wait) before publishing — the ack
    /// barrier. Default: a full synchronous [`commit`](ShardStore::commit),
    /// so stores without a pipeline keep the old semantics.
    fn commit_begin(&mut self) -> ServiceResult<()> {
        self.commit()
    }

    /// Blocks until every commit begun so far is durable, surfacing any
    /// background fsync outcome. Default: no-op (synchronous stores are
    /// already durable when `commit` returns).
    fn commit_wait(&mut self) -> ServiceResult<()> {
        Ok(())
    }

    /// The absolute offset one past the last appended record.
    fn end(&self) -> u64;

    /// The retained records from absolute offset `from` (clamped to the
    /// retained window) to the end, committed or staged.
    fn records_from(&self, from: u64) -> Vec<WalRecord>;

    /// Adopts a validated checkpoint: persists it, prunes retention down to
    /// the store's limit, and garbage-collects records older than the
    /// oldest retained checkpoint.
    fn put_checkpoint(&mut self, checkpoint: Checkpoint) -> ServiceResult<()>;

    /// Retained checkpoints, oldest → newest. Never empty: a store with no
    /// adopted checkpoint reports the genesis checkpoint, so recovery can
    /// always start somewhere.
    fn checkpoints(&self) -> Vec<Checkpoint>;
}

/// A factory for [`ShardStore`]s plus tier-wide observability.
pub trait StorageBackend: Send {
    /// Short human-readable backend name (`"memory"` / `"disk"`).
    fn name(&self) -> &'static str;

    /// Opens (creating or recovering) the store for one shard. `faults`
    /// carries the shard's deterministic fault schedule; disk stores arm
    /// torn-write / partial-fsync / corrupt-CRC faults from it, memory
    /// stores ignore it.
    fn open_shard(
        &mut self,
        shard: usize,
        faults: Arc<ShardFaults>,
    ) -> ServiceResult<Box<dyn ShardStore>>;

    /// Cumulative counters across every store this backend opened.
    fn stats(&self) -> StorageStats;
}

/// Monotonic counters for the storage tier, surfaced in
/// [`crate::ServiceStats::storage`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageStats {
    /// Backend name (`"memory"` for the in-memory tier and for bare
    /// services, which have no storage tier at all).
    pub backend: String,
    /// Group commits that wrote at least one staged record.
    pub commits: u64,
    /// `fsync` calls issued (0 when fsync is disabled in [`DiskConfig`]).
    pub fsyncs: u64,
    /// WAL bytes written, including frame headers.
    pub bytes_written: u64,
    /// Serialized payload bytes produced for WAL records and checkpoints
    /// (framing excluded) — the bytes-on-disk figure that moves when the
    /// codec changes, next to `bytes_written` which adds framing and
    /// rewrite amplification.
    #[serde(default)]
    pub payload_bytes: u64,
    /// WAL segment files created.
    pub segments_created: u64,
    /// Checkpoint files written.
    pub checkpoints_written: u64,
    /// Checkpoint files deleted by retention.
    pub checkpoints_pruned: u64,
    /// Torn segment tails truncated away during recovery scans.
    pub torn_tails_repaired: u64,
    /// Complete-but-invalid frames (CRC or decode failures) that ended a
    /// recovery scan.
    pub corrupt_frames_dropped: u64,
    /// Checkpoint files skipped during recovery (unreadable or corrupt).
    pub checkpoints_skipped: u64,
    /// Stores wedged by an injected torn-write / partial-fsync fault
    /// (writes silently stop; the service continues in memory).
    pub wedged: u64,
    /// Write attempts retried after a transient IO error (seeded-jittered
    /// exponential backoff inside one group commit).
    pub retries: u64,
    /// Damaged files moved into `.quarantine/` during recovery scans
    /// instead of wedging the store.
    pub quarantines: u64,
    /// Group commits served from the degraded memory mirror while the disk
    /// was unavailable (each one doubles as a re-attach probe).
    pub degraded_commits: u64,
    /// Successful heals: a degraded store backfilled its missed records
    /// from the memory mirror and re-attached durability.
    pub heal_events: u64,
    /// WAL segment files reclaimed by checkpoint-retention GC — segments
    /// wholly below the oldest retained checkpoint, deleted at checkpoint
    /// time and on cold start.
    #[serde(default)]
    pub wal_segments_reclaimed: u64,
    /// Bytes of WAL deleted with those reclaimed segments.
    #[serde(default)]
    pub wal_bytes_reclaimed: u64,
    /// File-cache behavior (disk backend only).
    pub cache: CacheStats,
}

impl fmt::Display for StorageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "storage[{}]: {} commits, {} fsyncs, {} bytes ({} payload), \
             {} segments (-{} gc'd, {} B), {} ckpts (+{} pruned), \
             heal {}r/{}q/{}d/{}h, cache {}h/{}m/{}c/{}e",
            self.backend,
            self.commits,
            self.fsyncs,
            self.bytes_written,
            self.payload_bytes,
            self.segments_created,
            self.wal_segments_reclaimed,
            self.wal_bytes_reclaimed,
            self.checkpoints_written,
            self.checkpoints_pruned,
            self.retries,
            self.quarantines,
            self.degraded_commits,
            self.heal_events,
            self.cache.hits,
            self.cache.misses,
            self.cache.coalesced,
            self.cache.evictions,
        )
    }
}
