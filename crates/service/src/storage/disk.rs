//! The on-disk storage backend: segmented CRC32-framed WAL files plus
//! checkpoint files, with group-commit fsync and crash recovery.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   shard-000/
//!     wal-0.seg        segment whose first record has absolute offset 0
//!     wal-417.seg      next segment (first record offset 417)
//!     ck-400.ck        checkpoint covering the first 400 records
//!     ck-800.ck        newest retained checkpoint
//!   shard-001/ …
//! ```
//!
//! Segments and checkpoints both hold [`super::frame`]-encoded records, so
//! every byte on disk is covered by a CRC. Appends stage frames in memory;
//! [`ShardStore::commit`] writes the whole stage with **one** write + fsync
//! (the group commit — the supervisor calls it once per tick epoch, before
//! any command is enqueued). Checkpoint files are written to a temp name,
//! fsynced, then renamed, so a crash never leaves a half checkpoint under a
//! live name.
//!
//! ## Recovery (open)
//!
//! Opening a shard directory scans checkpoints (skipping corrupt ones) and
//! segments in offset order, stopping at the first torn or corrupt frame:
//! the torn tail is truncated away, later segments (unreachable once the
//! offset chain breaks) are deleted, and the surviving prefix becomes the
//! in-memory mirror. All reads go through the shared [`FileCache`].
//!
//! ## Fault injection
//!
//! Torn-write / partial-fsync faults fire during a commit and then **wedge**
//! the store: subsequent writes are silently dropped while the in-memory
//! mirror keeps the live service correct — exactly the state of a machine
//! whose disk froze at that instant. A later cold start sees only the
//! committed prefix, which is what the crash-recovery suite asserts against.

use super::cache::FileCache;
use super::frame::{self, FrameError};
use super::memory::RETAINED;
use super::{ShardStore, StorageBackend, StorageStats};
use crate::error::{ServiceError, ServiceResult};
use crate::faults::{FaultKind, ShardFaults};
use crate::wal::{Checkpoint, Wal, WalRecord};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Disk backend tuning. `root` is the only required decision.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Data directory; one `shard-NNN` subdirectory per shard.
    pub root: PathBuf,
    /// Issue `fsync` on commits and checkpoint writes. Disable only in
    /// tests that don't model power loss — without fsync a "committed"
    /// record can still vanish in a real crash.
    pub fsync: bool,
    /// Rotate to a new segment file once the current one reaches this many
    /// bytes (checked after each commit).
    pub max_segment_bytes: u64,
    /// Byte budget for the shared segment/checkpoint read cache.
    pub cache_bytes: u64,
}

impl DiskConfig {
    /// Defaults (fsync on, 256 KiB segments, 8 MiB cache) rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DiskConfig {
            root: root.into(),
            fsync: true,
            max_segment_bytes: 256 * 1024,
            cache_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Tier-wide atomic counters shared by every store of one backend.
#[derive(Debug, Default)]
struct Counters {
    commits: AtomicU64,
    fsyncs: AtomicU64,
    bytes_written: AtomicU64,
    segments_created: AtomicU64,
    checkpoints_written: AtomicU64,
    checkpoints_pruned: AtomicU64,
    torn_tails_repaired: AtomicU64,
    corrupt_frames_dropped: AtomicU64,
    checkpoints_skipped: AtomicU64,
    wedged: AtomicU64,
}

/// Durable storage rooted at a data directory. See the module docs.
#[derive(Debug)]
pub struct DiskBackend {
    config: DiskConfig,
    cache: Arc<FileCache>,
    counters: Arc<Counters>,
}

impl DiskBackend {
    /// A disk backend over `config.root` (created on first shard open).
    pub fn new(config: DiskConfig) -> Self {
        let cache = Arc::new(FileCache::new(config.cache_bytes));
        DiskBackend { config, cache, counters: Arc::new(Counters::default()) }
    }

    /// The shared read cache (exposed for cache-behavior tests).
    pub fn cache(&self) -> &Arc<FileCache> {
        &self.cache
    }
}

impl StorageBackend for DiskBackend {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn open_shard(
        &mut self,
        shard: usize,
        faults: Arc<ShardFaults>,
    ) -> ServiceResult<Box<dyn ShardStore>> {
        let dir = self.config.root.join(format!("shard-{shard:03}"));
        let store = DiskStore::open(
            shard,
            dir,
            self.config.clone(),
            Arc::clone(&self.cache),
            Arc::clone(&self.counters),
            faults,
        )?;
        Ok(Box::new(store))
    }

    fn stats(&self) -> StorageStats {
        let c = &self.counters;
        StorageStats {
            backend: "disk".into(),
            commits: c.commits.load(Ordering::Relaxed),
            fsyncs: c.fsyncs.load(Ordering::Relaxed),
            bytes_written: c.bytes_written.load(Ordering::Relaxed),
            segments_created: c.segments_created.load(Ordering::Relaxed),
            checkpoints_written: c.checkpoints_written.load(Ordering::Relaxed),
            checkpoints_pruned: c.checkpoints_pruned.load(Ordering::Relaxed),
            torn_tails_repaired: c.torn_tails_repaired.load(Ordering::Relaxed),
            corrupt_frames_dropped: c.corrupt_frames_dropped.load(Ordering::Relaxed),
            checkpoints_skipped: c.checkpoints_skipped.load(Ordering::Relaxed),
            wedged: c.wedged.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }
}

/// One on-disk segment file.
#[derive(Debug, Clone)]
struct SegmentMeta {
    /// Absolute offset of the segment's first record.
    start: u64,
    /// Records currently in the segment.
    records: u64,
    /// Valid bytes currently in the segment.
    bytes: u64,
    path: PathBuf,
}

#[derive(Debug)]
struct DiskStore {
    shard: usize,
    dir: PathBuf,
    config: DiskConfig,
    cache: Arc<FileCache>,
    counters: Arc<Counters>,
    faults: Arc<ShardFaults>,
    /// In-memory mirror of the retained log: worker-death recovery replays
    /// from here without touching the disk.
    mirror: Wal,
    /// Retained checkpoints, oldest → newest (mirrors the files on disk).
    checkpoints: Vec<Checkpoint>,
    /// On-disk segments, ascending by start offset; the last one is the
    /// write target while `writer` is open.
    segments: Vec<SegmentMeta>,
    /// Open append handle into the last segment (None ⇒ the next commit
    /// starts a fresh segment).
    writer: Option<File>,
    /// Frames staged since the last commit.
    staged: Vec<u8>,
    staged_records: u64,
    /// Absolute offset of the first staged record.
    staged_start: u64,
    /// Group commits so far (1-based fault arming key).
    commit_count: u64,
    /// True once a torn-write/partial-fsync fault fired: all further disk
    /// writes are silently dropped.
    wedged: bool,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> ServiceError {
    ServiceError::Storage(format!("{what} {}: {e}", path.display()))
}

/// Parses `wal-<offset>.seg` / `ck-<offset>.ck` names.
fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

impl DiskStore {
    fn open(
        shard: usize,
        dir: PathBuf,
        config: DiskConfig,
        cache: Arc<FileCache>,
        counters: Arc<Counters>,
        faults: Arc<ShardFaults>,
    ) -> ServiceResult<Self> {
        fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, e))?;
        let mut store = DiskStore {
            shard,
            dir,
            config,
            cache,
            counters,
            faults,
            mirror: Wal::new(),
            checkpoints: Vec::new(),
            segments: Vec::new(),
            writer: None,
            staged: Vec::new(),
            staged_records: 0,
            staged_start: 0,
            commit_count: 0,
            wedged: false,
        };
        store.recover_from_dir()?;
        Ok(store)
    }

    /// Scans the shard directory, repairing torn tails and dropping
    /// unreachable data, and rebuilds the in-memory mirror + checkpoint
    /// window. See the module docs for the algorithm.
    fn recover_from_dir(&mut self) -> ServiceResult<()> {
        let mut seg_files: Vec<(u64, PathBuf)> = Vec::new();
        let mut ck_files: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("read dir", &self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir", &self.dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(off) = parse_name(&name, "wal-", ".seg") {
                seg_files.push((off, entry.path()));
            } else if let Some(off) = parse_name(&name, "ck-", ".ck") {
                ck_files.push((off, entry.path()));
            } else if name.ends_with(".tmp") {
                // A checkpoint write that never reached its rename.
                let _ = fs::remove_file(entry.path());
            }
        }
        seg_files.sort_by_key(|&(off, _)| off);
        ck_files.sort_by_key(|&(off, _)| off);

        // Checkpoints: newest RETAINED valid ones survive; corrupt or
        // unreadable files are counted and deleted, stale ones pruned.
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        for (off, path) in &ck_files {
            match self.read_checkpoint(path) {
                Ok(ck) if ck.wal_offset == *off && ck.snapshot.shard == self.shard => {
                    checkpoints.push(ck);
                }
                _ => {
                    self.counters.checkpoints_skipped.fetch_add(1, Ordering::Relaxed);
                    self.remove_file(path);
                }
            }
        }
        while checkpoints.len() > RETAINED {
            let stale = checkpoints.remove(0);
            self.counters.checkpoints_pruned.fetch_add(1, Ordering::Relaxed);
            self.remove_file(&self.ck_path(stale.wal_offset));
        }

        // Segments: walk in offset order while the offset chain stays
        // contiguous; the first torn/corrupt frame (or gap) ends the valid
        // prefix — the tail file is truncated, later files deleted.
        let mut records: Vec<WalRecord> = Vec::new();
        let mut segments: Vec<SegmentMeta> = Vec::new();
        let base = seg_files.first().map(|&(off, _)| off).unwrap_or(0);
        let mut next_start = base;
        let mut broken = false;
        for (off, path) in &seg_files {
            if broken || *off != next_start {
                self.remove_file(path);
                broken = true;
                continue;
            }
            let bytes = match self.read_file(path) {
                Ok(b) => b,
                Err(_) => {
                    self.counters.corrupt_frames_dropped.fetch_add(1, Ordering::Relaxed);
                    self.remove_file(path);
                    broken = true;
                    continue;
                }
            };
            let (decoded, valid_len, err) = frame::scan_values::<WalRecord>(&bytes);
            if let Some(err) = err {
                match err {
                    FrameError::Torn => {
                        self.counters.torn_tails_repaired.fetch_add(1, Ordering::Relaxed)
                    }
                    FrameError::Corrupt => {
                        self.counters.corrupt_frames_dropped.fetch_add(1, Ordering::Relaxed)
                    }
                };
                broken = true;
                if decoded.is_empty() {
                    self.remove_file(path);
                } else {
                    self.truncate_file(path, valid_len as u64)?;
                }
            }
            if decoded.is_empty() && err.is_some() {
                continue;
            }
            next_start = off + decoded.len() as u64;
            segments.push(SegmentMeta {
                start: *off,
                records: decoded.len() as u64,
                bytes: valid_len as u64,
                path: path.clone(),
            });
            records.extend(decoded);
        }

        let scan_end = base + records.len() as u64;
        self.mirror = Wal::from_parts(base, records);
        if let Some(newest) = checkpoints.last().cloned() {
            if newest.wal_offset > scan_end {
                // The log lost records the checkpoint already covers (e.g.
                // a corrupt frame below the checkpoint offset). The
                // checkpoint alone is the recovered state; the unreadable
                // log is discarded wholesale — and with it every older
                // checkpoint, whose replay suffix no longer exists.
                for seg in &segments {
                    self.remove_file(&seg.path);
                }
                segments.clear();
                for stale in &checkpoints {
                    if stale.wal_offset != newest.wal_offset {
                        self.remove_file(&self.ck_path(stale.wal_offset));
                    }
                }
                checkpoints = vec![newest.clone()];
                self.mirror = Wal::from_parts(newest.wal_offset, Vec::new());
            } else {
                // Records below the oldest retained checkpoint are dead
                // weight in the mirror (files stay until the next GC).
                if let Some(oldest) = checkpoints.first() {
                    self.mirror.truncate_to(oldest.wal_offset);
                }
            }
        }
        if checkpoints.is_empty() && self.mirror.end() - self.mirror.len() as u64 == 0 {
            // Full history on disk (or an empty directory): genesis is a
            // sound recovery base. When history was GC'd and every
            // checkpoint is gone, the window stays empty so recovery fails
            // loudly instead of silently replaying from the wrong base.
            checkpoints.push(Checkpoint::genesis(self.shard));
        }
        self.checkpoints = checkpoints;
        self.segments = segments;
        Ok(())
    }

    fn seg_path(&self, start: u64) -> PathBuf {
        self.dir.join(format!("wal-{start}.seg"))
    }

    fn ck_path(&self, offset: u64) -> PathBuf {
        self.dir.join(format!("ck-{offset}.ck"))
    }

    /// Reads a whole file through the shared cache.
    fn read_file(&self, path: &Path) -> ServiceResult<Arc<Vec<u8>>> {
        self.cache.get_or_load(path, || {
            fs::read(path).map_err(|e| io_err("read", path, e))
        })
    }

    fn read_checkpoint(&self, path: &Path) -> ServiceResult<Checkpoint> {
        let bytes = self.read_file(path)?;
        let (ck, consumed) = frame::decode_value::<Checkpoint>(&bytes)
            .map_err(|e| ServiceError::Storage(format!("{}: {e:?}", path.display())))?;
        if consumed != bytes.len() {
            return Err(ServiceError::Storage(format!(
                "{}: trailing bytes after checkpoint frame",
                path.display()
            )));
        }
        Ok(ck)
    }

    fn remove_file(&self, path: &Path) {
        let _ = fs::remove_file(path);
        self.cache.invalidate(path);
    }

    fn truncate_file(&self, path: &Path, len: u64) -> ServiceResult<()> {
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open", path, e))?;
        f.set_len(len).map_err(|e| io_err("truncate", path, e))?;
        if self.config.fsync {
            f.sync_data().map_err(|e| io_err("fsync", path, e))?;
        }
        self.cache.invalidate(path);
        Ok(())
    }

    /// Writes `bytes` to the current segment (opening a fresh one at
    /// `self.staged_start` if none is open), fsyncs per config, updates
    /// metadata, and rotates when the segment is full.
    fn write_to_segment(&mut self, bytes: &[u8], records: u64) -> ServiceResult<()> {
        if self.writer.is_none() {
            let start = self.staged_start;
            let path = self.seg_path(start);
            // `create(true)` + truncate: a same-named leftover could only be
            // an invalid tail already dropped by the recovery scan.
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .map_err(|e| io_err("create", &path, e))?;
            self.cache.invalidate(&path);
            self.segments.push(SegmentMeta { start, records: 0, bytes: 0, path });
            self.counters.segments_created.fetch_add(1, Ordering::Relaxed);
            self.writer = Some(file);
        }
        let Some(file) = self.writer.as_mut() else {
            return Err(ServiceError::Storage("segment writer vanished".into()));
        };
        file.write_all(bytes).map_err(|e| {
            ServiceError::Storage(format!("segment write (shard {}): {e}", self.shard))
        })?;
        if self.config.fsync {
            file.sync_data().map_err(|e| {
                ServiceError::Storage(format!("segment fsync (shard {}): {e}", self.shard))
            })?;
            self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        self.counters.bytes_written.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let Some(meta) = self.segments.last_mut() else {
            return Err(ServiceError::Storage("segment metadata vanished".into()));
        };
        meta.records += records;
        meta.bytes += bytes.len() as u64;
        self.cache.invalidate(&meta.path.clone());
        if meta.bytes >= self.config.max_segment_bytes {
            self.writer = None; // rotate: next commit starts a new segment
        }
        Ok(())
    }

    /// Deletes segment files that lie entirely below `oldest` (the oldest
    /// retained checkpoint offset) — their records can never be replayed
    /// again. The segment currently open for writing is never collected.
    fn collect_segments(&mut self, oldest: u64) {
        while self.segments.len() > 1 || (self.writer.is_none() && !self.segments.is_empty()) {
            let seg = &self.segments[0];
            if seg.start + seg.records > oldest {
                break;
            }
            if self.segments.len() == 1 && self.writer.is_some() {
                break;
            }
            let path = seg.path.clone();
            self.remove_file(&path);
            self.segments.remove(0);
        }
    }
}

impl ShardStore for DiskStore {
    fn append(&mut self, record: &WalRecord) -> ServiceResult<u64> {
        let offset = self.mirror.append(record.clone());
        if !self.wedged {
            if self.staged_records == 0 {
                self.staged_start = offset;
            }
            let frame = frame::encode_value(record)?;
            self.staged.extend_from_slice(&frame);
            self.staged_records += 1;
        }
        Ok(offset)
    }

    fn commit(&mut self) -> ServiceResult<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        if self.wedged {
            self.staged.clear();
            self.staged_records = 0;
            return Ok(());
        }
        self.commit_count += 1;
        let fault = self.faults.take_storage_fault(self.commit_count);
        let staged = std::mem::take(&mut self.staged);
        let staged_records = std::mem::take(&mut self.staged_records);
        match fault {
            Some(FaultKind::TornWrite { keep_bytes }) => {
                // A crash mid-write: a prefix of the staged frames lands on
                // disk (usually cutting a frame in half), then the disk
                // goes dark. Metadata is not updated — this store never
                // reads the torn file again; only a cold start will.
                let keep = (keep_bytes as usize).min(staged.len());
                self.write_to_segment(&staged[..keep], 0)?;
                self.wedged = true;
                self.counters.wedged.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(FaultKind::PartialFsync) => {
                // The write was acknowledged but never reached the platter:
                // nothing lands, the disk goes dark.
                self.wedged = true;
                self.counters.wedged.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(FaultKind::CorruptCrc) => {
                // Silent bit rot inside the first staged frame's payload;
                // the commit itself "succeeds".
                let mut staged = staged;
                if staged.len() > frame::FRAME_HEADER {
                    staged[frame::FRAME_HEADER] ^= 0xFF;
                }
                self.write_to_segment(&staged, staged_records)?;
                self.counters.commits.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            _ => {
                self.write_to_segment(&staged, staged_records)?;
                self.counters.commits.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
    }

    fn end(&self) -> u64 {
        self.mirror.end()
    }

    fn records_from(&self, from: u64) -> Vec<WalRecord> {
        self.mirror.iter_from(from).cloned().collect()
    }

    fn put_checkpoint(&mut self, checkpoint: Checkpoint) -> ServiceResult<()> {
        // The WAL must be durable up to the checkpoint's offset before the
        // checkpoint file can claim to cover it (write-ahead ordering).
        self.commit()?;
        let offset = checkpoint.wal_offset;
        if !self.wedged {
            let bytes = frame::encode_value(&checkpoint)?;
            let tmp = self.dir.join(format!("ck-{offset}.tmp"));
            let path = self.ck_path(offset);
            let mut file = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            file.write_all(&bytes).map_err(|e| io_err("write", &tmp, e))?;
            if self.config.fsync {
                file.sync_data().map_err(|e| io_err("fsync", &tmp, e))?;
                self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            drop(file);
            fs::rename(&tmp, &path).map_err(|e| io_err("rename", &tmp, e))?;
            self.cache.invalidate(&path);
            self.counters.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            self.counters.bytes_written.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        }
        // Retention window update (same shape as the memory backend). An
        // adoption at an already-retained offset replaces in place so the
        // prune below never deletes a live file.
        if self.checkpoints.last().map(|c| c.wal_offset) == Some(offset) {
            self.checkpoints.pop();
        }
        self.checkpoints.push(checkpoint);
        while self.checkpoints.len() > RETAINED {
            let stale = self.checkpoints.remove(0);
            if !self.wedged {
                self.remove_file(&self.ck_path(stale.wal_offset));
                self.counters.checkpoints_pruned.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(oldest) = self.checkpoints.first().map(|c| c.wal_offset) {
            self.mirror.truncate_to(oldest);
            if !self.wedged {
                self.collect_segments(oldest);
            }
        }
        Ok(())
    }

    fn checkpoints(&self) -> Vec<Checkpoint> {
        self.checkpoints.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Fault;
    use rrs_core::ColorId;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rrs-disk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn submit(tenant: u64, n: u64) -> WalRecord {
        WalRecord::Submit { tenant, arrivals: vec![(ColorId(0), n)] }
    }

    fn open_store(backend: &mut DiskBackend, shard: usize) -> Box<dyn ShardStore> {
        backend.open_shard(shard, ShardFaults::none()).unwrap()
    }

    #[test]
    fn committed_records_survive_reopen() {
        let root = temp_root("roundtrip");
        let mut backend = DiskBackend::new(DiskConfig::new(&root));
        {
            let mut store = open_store(&mut backend, 0);
            for i in 0..5 {
                store.append(&submit(i, i + 1)).unwrap();
                store.append(&WalRecord::Tick).unwrap();
            }
            store.commit().unwrap();
            // Staged-but-uncommitted records are visible in memory only.
            store.append(&submit(99, 1)).unwrap();
            assert_eq!(store.end(), 11);
        }
        let mut backend2 = DiskBackend::new(DiskConfig::new(&root));
        let store = open_store(&mut backend2, 0);
        assert_eq!(store.end(), 10, "the uncommitted record is gone");
        let records = store.records_from(0);
        assert_eq!(records.len(), 10);
        assert_eq!(records[0], submit(0, 1));
        assert_eq!(records[9], WalRecord::Tick);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn segments_rotate_and_old_ones_are_collected() {
        let root = temp_root("rotate");
        let mut cfg = DiskConfig::new(&root);
        cfg.max_segment_bytes = 64; // force rotation every commit or two
        cfg.fsync = false;
        let mut backend = DiskBackend::new(cfg.clone());
        let mut store = open_store(&mut backend, 0);
        for i in 0..20 {
            store.append(&submit(i, 1)).unwrap();
            store.commit().unwrap();
        }
        let segs = |root: &Path| {
            let mut v: Vec<String> = fs::read_dir(root.join("shard-000"))
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .filter(|n| n.ends_with(".seg"))
                .collect();
            v.sort();
            v
        };
        assert!(segs(&root).len() > 3, "rotation produced several segments");
        // Adopt checkpoints past the end: everything but the live segment
        // is garbage-collected.
        let ck = |off| Checkpoint { wal_offset: off, ..Checkpoint::genesis(0) };
        store.put_checkpoint(ck(19)).unwrap();
        store.put_checkpoint(ck(20)).unwrap();
        store.put_checkpoint(ck(20)).unwrap(); // same-offset re-adoption is safe
        assert!(segs(&root).len() <= 2, "collected: {:?}", segs(&root));
        // And the survivors still recover.
        let mut backend2 = DiskBackend::new(cfg);
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 20);
        assert_eq!(store2.checkpoints().last().unwrap().wal_offset, 20);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_write_fault_wedges_and_cold_start_recovers_the_prefix() {
        let root = temp_root("torn");
        let mut backend = DiskBackend::new(DiskConfig::new(&root));
        let faults = Arc::new(ShardFaults::new(vec![Fault {
            shard: 0,
            at_tick: 3, // third group commit tears
            kind: FaultKind::TornWrite { keep_bytes: 5 },
        }]));
        let mut store = backend.open_shard(0, faults).unwrap();
        for i in 0..6 {
            store.append(&submit(i, 1)).unwrap();
            store.commit().unwrap();
        }
        assert_eq!(store.end(), 6, "the live service saw every record");
        assert_eq!(backend.stats().wedged, 1);
        let mut backend2 = DiskBackend::new(DiskConfig::new(&root));
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 2, "commits 1-2 durable, 3 torn, 4-6 dark");
        assert_eq!(backend2.stats().torn_tails_repaired, 1);
        // The repaired store accepts new appends cleanly.
        drop(store2);
        let mut store2 = open_store(&mut backend2, 0);
        store2.append(&WalRecord::Tick).unwrap();
        store2.commit().unwrap();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_crc_fault_is_caught_by_recovery() {
        let root = temp_root("crc");
        let mut backend = DiskBackend::new(DiskConfig::new(&root));
        let faults = Arc::new(ShardFaults::new(vec![Fault {
            shard: 0,
            at_tick: 2,
            kind: FaultKind::CorruptCrc,
        }]));
        let mut store = backend.open_shard(0, faults).unwrap();
        for i in 0..4 {
            store.append(&submit(i, 1)).unwrap();
            store.commit().unwrap();
        }
        let mut backend2 = DiskBackend::new(DiskConfig::new(&root));
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 1, "scan stops at the rotted frame");
        assert_eq!(backend2.stats().corrupt_frames_dropped, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_checkpoint_files_are_skipped() {
        let root = temp_root("badck");
        let cfg = DiskConfig::new(&root);
        let mut backend = DiskBackend::new(cfg.clone());
        let mut store = open_store(&mut backend, 0);
        for _ in 0..4 {
            store.append(&WalRecord::Tick).unwrap();
        }
        store.commit().unwrap();
        store
            .put_checkpoint(Checkpoint { wal_offset: 4, ..Checkpoint::genesis(0) })
            .unwrap();
        drop(store);
        // Rot the checkpoint file on disk.
        let ck = root.join("shard-000").join("ck-4.ck");
        let mut bytes = fs::read(&ck).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&ck, bytes).unwrap();
        let mut backend2 = DiskBackend::new(cfg);
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(backend2.stats().checkpoints_skipped, 1);
        // Falls back to genesis + full replay: all four ticks recovered.
        let cks = store2.checkpoints();
        assert_eq!(cks.len(), 1);
        assert_eq!(cks[0].wal_offset, 0, "genesis fallback");
        assert_eq!(store2.end(), 4);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_hits_the_cache() {
        let root = temp_root("cache");
        let mut cfg = DiskConfig::new(&root);
        cfg.fsync = false;
        let backend_cfg = cfg.clone();
        {
            let mut backend = DiskBackend::new(cfg);
            let mut store = open_store(&mut backend, 0);
            for _ in 0..3 {
                store.append(&WalRecord::Tick).unwrap();
            }
            store.commit().unwrap();
        }
        let mut backend = DiskBackend::new(backend_cfg);
        let _first = open_store(&mut backend, 0);
        let misses_after_first = backend.stats().cache.misses;
        let _second = open_store(&mut backend, 0);
        let s = backend.stats();
        assert!(s.cache.hits >= 1, "second open reuses cached segment bytes");
        assert_eq!(s.cache.misses, misses_after_first, "no new loads");
        let _ = fs::remove_dir_all(&root);
    }
}
