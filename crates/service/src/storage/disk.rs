//! The on-disk storage backend: segmented CRC32-framed WAL files plus
//! checkpoint files, with group-commit fsync and crash recovery.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   shard-000/
//!     wal-0.seg        segment whose first record has absolute offset 0
//!     wal-417.seg      next segment (first record offset 417)
//!     ck-400.ck        checkpoint covering the first 400 records
//!     ck-800.ck        newest retained checkpoint
//!   shard-001/ …
//! ```
//!
//! Segments and checkpoints both hold [`super::frame`]-encoded records, so
//! every byte on disk is covered by a CRC. Appends stage frames in memory;
//! [`ShardStore::commit`] writes the whole stage with **one** write + fsync
//! (the group commit — the supervisor calls it once per tick epoch, before
//! any command is enqueued). Checkpoint files are written to a temp name,
//! fsynced, then renamed, so a crash never leaves a half checkpoint under a
//! live name.
//!
//! ## Recovery (open)
//!
//! Opening a shard directory scans checkpoints (skipping corrupt ones) and
//! segments in offset order, stopping at the first torn or corrupt frame:
//! the torn tail is truncated away, later segments (unreachable once the
//! offset chain breaks) are deleted, and the surviving prefix becomes the
//! in-memory mirror. All reads go through the shared [`FileCache`].
//!
//! ## Self-healing
//!
//! Live IO failures no longer wedge the store. Each failure is classified
//! **transient** (interrupted / would-block / timed-out, or an injected
//! [`FaultKind::TransientIo`] / [`FaultKind::IoErrorBurst`]) or
//! **permanent** (everything else, e.g. an injected [`FaultKind::DiskFull`]).
//! Transient write failures are retried in place with seeded-jittered
//! exponential backoff; when retries exhaust — or a permanent failure hits —
//! the store drops to **degraded memory-mirror mode**: appends keep landing
//! in the mirror (the live service stays correct and keeps serving), every
//! subsequent commit doubles as a re-attach probe, and the first probe that
//! can write again *backfills* the records missed while degraded (tracked by
//! `written_end`) before resuming normal commits — a heal event. Recovery
//! scans move unreadable or unreachable files into `.quarantine/` (with a
//! `MANIFEST` line per file) instead of deleting evidence. All of it is
//! counted: `retries`, `quarantines`, `degraded_commits`, `heal_events`.
//!
//! ## Pipelined fsync
//!
//! With `pipeline_fsync` on (the default), group-commit fsyncs are executed
//! by one background thread per backend: `commit_begin` writes the staged
//! frames and enqueues the fsync; `commit_wait` is the **ack barrier** — it
//! blocks until every enqueued fsync for this store has landed, so the
//! supervisor still externalizes state only after the epoch is durable. The
//! write→fsync→publish ordering is unchanged; only the wait overlaps with
//! the epoch's worker round-trips. A background fsync failure degrades the
//! store (self-healing) instead of surfacing as a hard error. The
//! crash-consistency story is identical to synchronous fsync.
//!
//! ## Fault injection
//!
//! Torn-write / partial-fsync faults fire during a commit and then **wedge**
//! the store: subsequent writes are silently dropped while the in-memory
//! mirror keeps the live service correct — exactly the state of a machine
//! whose disk froze at that instant. A later cold start sees only the
//! committed prefix, which is what the crash-recovery suite asserts against.
//! The IO-fault kinds above instead exercise the self-healing paths and
//! must lose nothing.

use super::cache::FileCache;
use super::frame::{self, FrameError};
use super::memory::RETAINED;
use super::{ShardStore, StorageBackend, StorageStats};
use crate::error::{ServiceError, ServiceResult};
use crate::faults::{self, FaultKind, ShardFaults};
use crate::wal::{Checkpoint, Wal, WalRecord};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Disk backend tuning. `root` is the only required decision.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Data directory; one `shard-NNN` subdirectory per shard.
    pub root: PathBuf,
    /// Issue `fsync` on commits and checkpoint writes. Disable only in
    /// tests that don't model power loss — without fsync a "committed"
    /// record can still vanish in a real crash.
    pub fsync: bool,
    /// Rotate to a new segment file once the current one reaches this many
    /// bytes (checked after each commit).
    pub max_segment_bytes: u64,
    /// Byte budget for the shared segment/checkpoint read cache.
    pub cache_bytes: u64,
    /// Write attempts per group commit (including the first) before a
    /// transient IO failure degrades the store to memory-mirror mode.
    pub io_retries: u32,
    /// Base pause before the first retry of a transient IO failure; doubles
    /// per retry, with deterministic per-shard jitter in `[pause/2, pause]`.
    pub io_backoff: Duration,
    /// Run group-commit fsyncs on a background thread (`commit_begin` /
    /// `commit_wait` pipelining). Acks still publish only after the epoch's
    /// fsync lands; this only overlaps the wait with worker round-trips.
    pub pipeline_fsync: bool,
    /// Payload format for newly written WAL records and checkpoints.
    /// Reading always sniffs the format per frame, so directories written
    /// under one codec recover under the other; this knob only picks what
    /// new frames look like. `Binary` is the default; `Json` is the slower
    /// conformance oracle (`--codec json`).
    pub codec: frame::Codec,
}

impl DiskConfig {
    /// Defaults (fsync on and pipelined, 256 KiB segments, 8 MiB cache,
    /// 4 write attempts with 500 µs base backoff) rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DiskConfig {
            root: root.into(),
            fsync: true,
            max_segment_bytes: 256 * 1024,
            cache_bytes: 8 * 1024 * 1024,
            io_retries: 4,
            io_backoff: Duration::from_micros(500),
            pipeline_fsync: true,
            codec: frame::Codec::default(),
        }
    }

    /// Preflight check that `root` can actually back a disk store: it must
    /// be (or be creatable as) a directory we can write into. Returns the
    /// typed [`ServiceError::InvalidDataDir`] the CLI maps to exit code 2.
    pub fn validate(&self) -> ServiceResult<()> {
        let path = self.root.display().to_string();
        if self.root.exists() && !self.root.is_dir() {
            return Err(ServiceError::InvalidDataDir {
                path,
                reason: "exists but is not a directory".into(),
            });
        }
        fs::create_dir_all(&self.root).map_err(|e| ServiceError::InvalidDataDir {
            path: path.clone(),
            reason: format!("cannot create: {e}"),
        })?;
        let probe = self.root.join(".rrs-writable-probe");
        fs::write(&probe, b"probe")
            .map_err(|e| ServiceError::InvalidDataDir {
                path: path.clone(),
                reason: format!("not writable: {e}"),
            })?;
        let _ = fs::remove_file(&probe);
        Ok(())
    }
}

/// Tier-wide atomic counters shared by every store of one backend.
#[derive(Debug, Default)]
struct Counters {
    commits: AtomicU64,
    fsyncs: AtomicU64,
    bytes_written: AtomicU64,
    payload_bytes: AtomicU64,
    segments_created: AtomicU64,
    checkpoints_written: AtomicU64,
    checkpoints_pruned: AtomicU64,
    torn_tails_repaired: AtomicU64,
    corrupt_frames_dropped: AtomicU64,
    checkpoints_skipped: AtomicU64,
    wedged: AtomicU64,
    retries: AtomicU64,
    quarantines: AtomicU64,
    degraded_commits: AtomicU64,
    heal_events: AtomicU64,
    wal_segments_reclaimed: AtomicU64,
    wal_bytes_reclaimed: AtomicU64,
}

/// One background-fsync request: sync this handle, then settle the owning
/// store's barrier.
struct FsyncJob {
    file: File,
    sync: Arc<SyncState>,
    counters: Arc<Counters>,
}

/// Per-store barrier between `commit_begin` (enqueue) and `commit_wait`.
#[derive(Debug, Default)]
struct SyncState {
    inner: Mutex<SyncInner>,
    done: Condvar,
}

#[derive(Debug, Default)]
struct SyncInner {
    pending: u64,
    /// First background fsync failure since the last wait, if any.
    error: Option<String>,
}

impl SyncState {
    fn enqueue(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).pending += 1;
    }

    fn complete(&self, error: Option<String>) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.pending = inner.pending.saturating_sub(1);
        if inner.error.is_none() {
            inner.error = error;
        }
        drop(inner);
        self.done.notify_all();
    }

    /// Blocks until every enqueued fsync has completed; returns the first
    /// failure observed since the previous wait.
    fn wait_idle(&self) -> Option<String> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        while inner.pending > 0 {
            inner = self.done.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
        inner.error.take()
    }
}

/// Durable storage rooted at a data directory. See the module docs.
#[derive(Debug)]
pub struct DiskBackend {
    config: DiskConfig,
    cache: Arc<FileCache>,
    counters: Arc<Counters>,
    /// Submission side of the background fsync thread (None ⇒ fsyncs run
    /// inline). The thread drains the channel and exits once every sender —
    /// the backend's and each store's — is gone.
    pipe: Option<Sender<FsyncJob>>,
}

impl DiskBackend {
    /// A disk backend over `config.root` (created on first shard open).
    pub fn new(config: DiskConfig) -> Self {
        let cache = Arc::new(FileCache::new(config.cache_bytes));
        let pipe = if config.fsync && config.pipeline_fsync {
            let (tx, rx) = mpsc::channel::<FsyncJob>();
            std::thread::Builder::new()
                .name("rrs-fsync".into())
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let res = job.file.sync_data();
                        job.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
                        job.sync.complete(res.err().map(|e| e.to_string()));
                    }
                })
                .ok()
                .map(|_| tx)
        } else {
            None
        };
        DiskBackend { config, cache, counters: Arc::new(Counters::default()), pipe }
    }

    /// The shared read cache (exposed for cache-behavior tests).
    pub fn cache(&self) -> &Arc<FileCache> {
        &self.cache
    }
}

impl StorageBackend for DiskBackend {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn open_shard(
        &mut self,
        shard: usize,
        faults: Arc<ShardFaults>,
    ) -> ServiceResult<Box<dyn ShardStore>> {
        let dir = self.config.root.join(format!("shard-{shard:03}"));
        let store = DiskStore::open(
            shard,
            dir,
            self.config.clone(),
            Arc::clone(&self.cache),
            Arc::clone(&self.counters),
            faults,
            self.pipe.clone(),
        )?;
        Ok(Box::new(store))
    }

    fn stats(&self) -> StorageStats {
        let c = &self.counters;
        StorageStats {
            backend: "disk".into(),
            commits: c.commits.load(Ordering::Relaxed),
            fsyncs: c.fsyncs.load(Ordering::Relaxed),
            bytes_written: c.bytes_written.load(Ordering::Relaxed),
            payload_bytes: c.payload_bytes.load(Ordering::Relaxed),
            segments_created: c.segments_created.load(Ordering::Relaxed),
            checkpoints_written: c.checkpoints_written.load(Ordering::Relaxed),
            checkpoints_pruned: c.checkpoints_pruned.load(Ordering::Relaxed),
            torn_tails_repaired: c.torn_tails_repaired.load(Ordering::Relaxed),
            corrupt_frames_dropped: c.corrupt_frames_dropped.load(Ordering::Relaxed),
            checkpoints_skipped: c.checkpoints_skipped.load(Ordering::Relaxed),
            wedged: c.wedged.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            quarantines: c.quarantines.load(Ordering::Relaxed),
            degraded_commits: c.degraded_commits.load(Ordering::Relaxed),
            heal_events: c.heal_events.load(Ordering::Relaxed),
            wal_segments_reclaimed: c.wal_segments_reclaimed.load(Ordering::Relaxed),
            wal_bytes_reclaimed: c.wal_bytes_reclaimed.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }
}

/// One on-disk segment file.
#[derive(Debug, Clone)]
struct SegmentMeta {
    /// Absolute offset of the segment's first record.
    start: u64,
    /// Records currently in the segment.
    records: u64,
    /// Valid bytes currently in the segment.
    bytes: u64,
    path: PathBuf,
}

#[derive(Debug)]
struct DiskStore {
    shard: usize,
    dir: PathBuf,
    config: DiskConfig,
    cache: Arc<FileCache>,
    counters: Arc<Counters>,
    faults: Arc<ShardFaults>,
    /// In-memory mirror of the retained log: worker-death recovery replays
    /// from here without touching the disk.
    mirror: Wal,
    /// Retained checkpoints, oldest → newest (mirrors the files on disk).
    checkpoints: Vec<Checkpoint>,
    /// On-disk segments, ascending by start offset; the last one is the
    /// write target while `writer` is open.
    segments: Vec<SegmentMeta>,
    /// Open append handle into the last segment (None ⇒ the next commit
    /// starts a fresh segment).
    writer: Option<File>,
    /// Frames staged since the last commit.
    staged: Vec<u8>,
    staged_records: u64,
    /// Absolute offset of the first staged record.
    staged_start: u64,
    /// Group commits so far (1-based fault arming key).
    commit_count: u64,
    /// True once a torn-write/partial-fsync fault fired: all further disk
    /// writes are silently dropped.
    wedged: bool,
    /// Absolute offset one past the last record *successfully written* to a
    /// segment file. While attached this tracks the committed end; while
    /// degraded it marks where the heal backfill must start.
    written_end: u64,
    /// True ⇒ degraded memory-mirror mode: the disk is failing, appends go
    /// to the mirror only, and every commit doubles as a re-attach probe.
    degraded: bool,
    /// A failed write attempt may have left garbage past the last segment's
    /// valid byte count; healed tails are shaved back before reuse.
    dirty_tail: bool,
    /// Injected [`FaultKind::TransientIo`]: write attempts left to fail.
    attempt_failures: u64,
    /// Injected outage ([`FaultKind::IoErrorBurst`] / [`FaultKind::DiskFull`]):
    /// group commits (or probes) left to fail, and whether the simulated
    /// errors are permanent-class.
    outage_commits: u64,
    outage_permanent: bool,
    /// Barrier between pipelined `commit_begin`s and `commit_wait`.
    sync: Arc<SyncState>,
    /// Background fsync submission (None ⇒ sync inline).
    pipe: Option<Sender<FsyncJob>>,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> ServiceError {
    ServiceError::Storage(format!("{what} {}: {e}", path.display()))
}

/// A classified IO failure: transient ones are worth retrying, permanent
/// ones degrade the store immediately.
#[derive(Debug, Clone)]
struct IoFailure {
    transient: bool,
    msg: String,
}

/// Classifies a real `io::Error`: interrupted / would-block / timed-out
/// write attempts are transient blips; everything else (ENOSPC, EIO, EROFS,
/// permission changes…) is treated as permanent until a probe succeeds.
fn classify(what: &str, shard: usize, e: &std::io::Error) -> IoFailure {
    use std::io::ErrorKind;
    let transient = matches!(
        e.kind(),
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
    );
    IoFailure { transient, msg: format!("{what} (shard {shard}): {e}") }
}

/// Parses `wal-<offset>.seg` / `ck-<offset>.ck` names.
fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

impl DiskStore {
    fn open(
        shard: usize,
        dir: PathBuf,
        config: DiskConfig,
        cache: Arc<FileCache>,
        counters: Arc<Counters>,
        faults: Arc<ShardFaults>,
        pipe: Option<Sender<FsyncJob>>,
    ) -> ServiceResult<Self> {
        fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, e))?;
        let mut store = DiskStore {
            shard,
            dir,
            config,
            cache,
            counters,
            faults,
            mirror: Wal::new(),
            checkpoints: Vec::new(),
            segments: Vec::new(),
            writer: None,
            staged: Vec::new(),
            staged_records: 0,
            staged_start: 0,
            commit_count: 0,
            wedged: false,
            written_end: 0,
            degraded: false,
            dirty_tail: false,
            attempt_failures: 0,
            outage_commits: 0,
            outage_permanent: false,
            sync: Arc::new(SyncState::default()),
            pipe,
        };
        store.recover_from_dir()?;
        store.written_end = store.mirror.end();
        Ok(store)
    }

    /// Scans the shard directory, repairing torn tails and dropping
    /// unreachable data, and rebuilds the in-memory mirror + checkpoint
    /// window. See the module docs for the algorithm.
    fn recover_from_dir(&mut self) -> ServiceResult<()> {
        let mut seg_files: Vec<(u64, PathBuf)> = Vec::new();
        let mut ck_files: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("read dir", &self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir", &self.dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(off) = parse_name(&name, "wal-", ".seg") {
                seg_files.push((off, entry.path()));
            } else if let Some(off) = parse_name(&name, "ck-", ".ck") {
                ck_files.push((off, entry.path()));
            } else if name.ends_with(".tmp") {
                // A checkpoint write that never reached its rename.
                let _ = fs::remove_file(entry.path());
            }
        }
        seg_files.sort_by_key(|&(off, _)| off);
        ck_files.sort_by_key(|&(off, _)| off);

        // Checkpoints: newest RETAINED valid ones survive; corrupt or
        // unreadable files are counted and deleted, stale ones pruned.
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        for (off, path) in &ck_files {
            match self.read_checkpoint(path) {
                Ok(ck) if ck.wal_offset == *off && ck.snapshot.shard == self.shard => {
                    checkpoints.push(ck);
                }
                _ => {
                    self.counters.checkpoints_skipped.fetch_add(1, Ordering::Relaxed);
                    self.quarantine_file(path, "corrupt or mismatched checkpoint");
                }
            }
        }
        while checkpoints.len() > RETAINED {
            let stale = checkpoints.remove(0);
            self.counters.checkpoints_pruned.fetch_add(1, Ordering::Relaxed);
            self.remove_file(&self.ck_path(stale.wal_offset));
        }

        // Segments: walk in offset order while the offset chain stays
        // contiguous; the first torn/corrupt frame (or gap) ends the valid
        // prefix — the tail file is truncated, later files deleted.
        let mut records: Vec<WalRecord> = Vec::new();
        let mut segments: Vec<SegmentMeta> = Vec::new();
        let base = seg_files.first().map(|&(off, _)| off).unwrap_or(0);
        let mut next_start = base;
        let mut broken = false;
        for (off, path) in &seg_files {
            if broken || *off != next_start {
                self.quarantine_file(path, "unreachable after log break");
                broken = true;
                continue;
            }
            let bytes = match self.read_file(path) {
                Ok(b) => b,
                Err(_) => {
                    self.counters.corrupt_frames_dropped.fetch_add(1, Ordering::Relaxed);
                    self.quarantine_file(path, "unreadable segment");
                    broken = true;
                    continue;
                }
            };
            let (decoded, valid_len, err) = frame::scan_values::<WalRecord>(&bytes);
            if let Some(err) = err {
                let reason = match err {
                    FrameError::Torn => {
                        self.counters.torn_tails_repaired.fetch_add(1, Ordering::Relaxed);
                        "no valid frames (torn)"
                    }
                    FrameError::Corrupt => {
                        self.counters.corrupt_frames_dropped.fetch_add(1, Ordering::Relaxed);
                        "no valid frames (corrupt)"
                    }
                };
                broken = true;
                if decoded.is_empty() {
                    self.quarantine_file(path, reason);
                } else {
                    self.truncate_file(path, valid_len as u64)?;
                }
            }
            if decoded.is_empty() && err.is_some() {
                continue;
            }
            next_start = off + decoded.len() as u64;
            segments.push(SegmentMeta {
                start: *off,
                records: decoded.len() as u64,
                bytes: valid_len as u64,
                path: path.clone(),
            });
            records.extend(decoded);
        }

        let scan_end = base + records.len() as u64;
        self.mirror = Wal::from_parts(base, records);
        if let Some(newest) = checkpoints.last().cloned() {
            if newest.wal_offset > scan_end {
                // The log lost records the checkpoint already covers (e.g.
                // a corrupt frame below the checkpoint offset). The
                // checkpoint alone is the recovered state; the unreadable
                // log is discarded wholesale — and with it every older
                // checkpoint, whose replay suffix no longer exists.
                for seg in &segments {
                    self.remove_file(&seg.path);
                }
                segments.clear();
                for stale in &checkpoints {
                    if stale.wal_offset != newest.wal_offset {
                        self.remove_file(&self.ck_path(stale.wal_offset));
                    }
                }
                checkpoints = vec![newest.clone()];
                self.mirror = Wal::from_parts(newest.wal_offset, Vec::new());
            } else {
                // Records below the oldest retained checkpoint are dead
                // weight in the mirror (their files are reclaimed below).
                if let Some(oldest) = checkpoints.first() {
                    self.mirror.truncate_to(oldest.wal_offset);
                }
            }
        }
        if checkpoints.is_empty() && self.mirror.end() - self.mirror.len() as u64 == 0 {
            // Full history on disk (or an empty directory): genesis is a
            // sound recovery base. When history was GC'd and every
            // checkpoint is gone, the window stays empty so recovery fails
            // loudly instead of silently replaying from the wrong base.
            checkpoints.push(Checkpoint::genesis(self.shard));
        }
        self.checkpoints = checkpoints;
        self.segments = segments;
        // Cold-start GC: segment files wholly below the oldest retained
        // checkpoint can never be replayed again; reclaim them now rather
        // than carrying them until the next checkpoint adoption.
        if let Some(oldest) = self.checkpoints.first().map(|c| c.wal_offset) {
            self.collect_segments(oldest);
        }
        Ok(())
    }

    fn seg_path(&self, start: u64) -> PathBuf {
        self.dir.join(format!("wal-{start}.seg"))
    }

    fn ck_path(&self, offset: u64) -> PathBuf {
        self.dir.join(format!("ck-{offset}.ck"))
    }

    /// Reads a whole file through the shared cache.
    fn read_file(&self, path: &Path) -> ServiceResult<Arc<Vec<u8>>> {
        self.cache.get_or_load(path, || {
            fs::read(path).map_err(|e| io_err("read", path, e))
        })
    }

    fn read_checkpoint(&self, path: &Path) -> ServiceResult<Checkpoint> {
        let bytes = self.read_file(path)?;
        let (ck, consumed) = frame::decode_value::<Checkpoint>(&bytes)
            .map_err(|e| ServiceError::Storage(format!("{}: {e:?}", path.display())))?;
        if consumed != bytes.len() {
            return Err(ServiceError::Storage(format!(
                "{}: trailing bytes after checkpoint frame",
                path.display()
            )));
        }
        Ok(ck)
    }

    fn remove_file(&self, path: &Path) {
        let _ = fs::remove_file(path);
        self.cache.invalidate(path);
    }

    fn truncate_file(&self, path: &Path, len: u64) -> ServiceResult<()> {
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open", path, e))?;
        f.set_len(len).map_err(|e| io_err("truncate", path, e))?;
        if self.config.fsync {
            f.sync_data().map_err(|e| io_err("fsync", path, e))?;
        }
        self.cache.invalidate(path);
        Ok(())
    }

    /// Moves a damaged or unreachable file into `<shard>/.quarantine/` and
    /// appends a `MANIFEST` line naming it and why — evidence survives for
    /// post-mortems instead of being deleted, and the recovery scan never
    /// sees the file again (the `.quarantine` name parses as neither a
    /// segment nor a checkpoint). Falls back to deletion when the rename
    /// itself fails; all steps are best-effort (recovery must proceed).
    fn quarantine_file(&self, path: &Path, reason: &str) {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            return;
        };
        let qdir = self.dir.join(".quarantine");
        let moved =
            fs::create_dir_all(&qdir).is_ok() && fs::rename(path, qdir.join(&name)).is_ok();
        if !moved {
            let _ = fs::remove_file(path);
        }
        if let Ok(mut manifest) =
            OpenOptions::new().create(true).append(true).open(qdir.join("MANIFEST"))
        {
            let _ = writeln!(manifest, "{name}\t{reason}");
        }
        self.counters.quarantines.fetch_add(1, Ordering::Relaxed);
        self.cache.invalidate(path);
    }

    /// Drops to degraded memory-mirror mode: the disk is failing, the live
    /// service keeps running off the mirror, and every later commit probes
    /// for re-attachment. Idempotent.
    fn enter_degraded(&mut self) {
        if self.degraded || self.wedged {
            return;
        }
        self.degraded = true;
        self.dirty_tail = true;
        self.writer = None;
        self.attempt_failures = 0;
    }

    /// Clears the wreckage of a failed write attempt so the next attempt
    /// starts from a chain-valid disk state: an empty just-created segment
    /// is dropped whole; a partially-extended one is shaved back to its
    /// last valid byte count.
    fn repair_failed_write(&mut self) -> Result<(), IoFailure> {
        self.writer = None;
        let Some(meta) = self.segments.last().cloned() else {
            self.dirty_tail = false;
            return Ok(());
        };
        if meta.records == 0 {
            self.remove_file(&meta.path);
            self.segments.pop();
            self.dirty_tail = false;
            return Ok(());
        }
        let file = OpenOptions::new()
            .write(true)
            .open(&meta.path)
            .map_err(|e| classify("reopen tail", self.shard, &e))?;
        file.set_len(meta.bytes).map_err(|e| classify("shave tail", self.shard, &e))?;
        if self.config.fsync {
            file.sync_data().map_err(|e| classify("fsync tail", self.shard, &e))?;
        }
        self.cache.invalidate(&meta.path);
        self.dirty_tail = false;
        Ok(())
    }

    /// An injected outage in progress? Consumes one commit's worth and
    /// reports whether the simulated errors are permanent-class.
    fn outage_active(&mut self) -> Option<bool> {
        if self.outage_commits == 0 {
            return None;
        }
        self.outage_commits -= 1;
        Some(self.outage_permanent)
    }

    /// Writes one group commit's bytes starting at absolute record offset
    /// `start`, retrying transient failures with seeded-jittered exponential
    /// backoff. `forced` carries an injected whole-commit outage
    /// (`Some(permanent)`); injected single-attempt failures come from
    /// `attempt_failures`. On `Err` the disk state has been repaired
    /// best-effort and the caller should degrade.
    fn write_with_retry(
        &mut self,
        start: u64,
        bytes: &[u8],
        records: u64,
        forced: Option<bool>,
    ) -> Result<(), IoFailure> {
        let attempts = if forced == Some(true) { 1 } else { self.config.io_retries.max(1) };
        let mut last = IoFailure { transient: true, msg: "no attempt made".into() };
        for attempt in 0..attempts {
            if attempt > 0 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                let base = self
                    .config
                    .io_backoff
                    .saturating_mul(1u32 << (attempt - 1).min(10));
                std::thread::sleep(faults::jittered(base, self.shard as u64, attempt as u64));
            }
            let injected = if forced.is_some() {
                Some(IoFailure {
                    transient: forced != Some(true),
                    msg: "injected IO outage".into(),
                })
            } else if self.attempt_failures > 0 {
                self.attempt_failures -= 1;
                Some(IoFailure { transient: true, msg: "injected transient IO error".into() })
            } else {
                None
            };
            let was_injected = injected.is_some();
            let result = match injected {
                Some(failure) => Err(failure),
                None => self.write_to_segment(start, bytes, records),
            };
            match result {
                Ok(()) => return Ok(()),
                Err(failure) => {
                    // A real failure may have half-extended the segment;
                    // shave it back before retrying (or degrading) so the
                    // on-disk chain stays valid. Injected failures fire
                    // before any byte moves, so there is nothing to repair.
                    if !was_injected {
                        let _ = self.repair_failed_write();
                    }
                    if !failure.transient {
                        return Err(failure);
                    }
                    last = failure;
                }
            }
        }
        Err(last)
    }

    /// Writes `bytes` to the current segment (opening a fresh one at
    /// `start` if none is open), arranges its fsync per config — pipelined
    /// through the background thread when available, inline otherwise —
    /// updates metadata, and rotates when the segment is full.
    fn write_to_segment(
        &mut self,
        start: u64,
        bytes: &[u8],
        records: u64,
    ) -> Result<(), IoFailure> {
        if self.writer.is_none() {
            let path = self.seg_path(start);
            // `create(true)` + truncate: a same-named leftover could only be
            // an invalid tail already dropped by the recovery scan.
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .map_err(|e| classify("segment create", self.shard, &e))?;
            self.cache.invalidate(&path);
            self.segments.push(SegmentMeta { start, records: 0, bytes: 0, path });
            self.counters.segments_created.fetch_add(1, Ordering::Relaxed);
            self.writer = Some(file);
        }
        let Some(file) = self.writer.as_mut() else {
            return Err(IoFailure { transient: false, msg: "segment writer vanished".into() });
        };
        file.write_all(bytes).map_err(|e| classify("segment write", self.shard, &e))?;
        if self.config.fsync {
            match (self.pipe.as_ref(), file.try_clone()) {
                (Some(tx), Ok(clone)) => {
                    // Pipelined: enqueue and let commit_wait barrier on it.
                    self.sync.enqueue();
                    let job = FsyncJob {
                        file: clone,
                        sync: Arc::clone(&self.sync),
                        counters: Arc::clone(&self.counters),
                    };
                    if let Err(back) = tx.send(job) {
                        // Thread gone — sync inline and settle the barrier.
                        let job = back.0;
                        let res = job.file.sync_data();
                        job.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
                        job.sync.complete(res.err().map(|e| e.to_string()));
                    }
                }
                _ => {
                    file.sync_data()
                        .map_err(|e| classify("segment fsync", self.shard, &e))?;
                    self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.counters.bytes_written.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let Some(meta) = self.segments.last_mut() else {
            return Err(IoFailure { transient: false, msg: "segment metadata vanished".into() });
        };
        meta.records += records;
        meta.bytes += bytes.len() as u64;
        self.cache.invalidate(&meta.path.clone());
        if meta.bytes >= self.config.max_segment_bytes {
            self.writer = None; // rotate: next commit starts a new segment
        }
        self.written_end = start + records;
        Ok(())
    }

    /// One degraded-mode probe: if the (injected) outage has cleared, shave
    /// any dirty tail, backfill every record the disk missed from the
    /// memory mirror, barrier its fsync, and re-attach. Stays degraded on
    /// any failure — the next commit probes again.
    fn probe_heal(&mut self) {
        self.counters.degraded_commits.fetch_add(1, Ordering::Relaxed);
        if self.outage_active().is_some() {
            return; // the simulated outage is still in force
        }
        if self.dirty_tail && self.repair_failed_write().is_err() {
            return;
        }
        let missed: Vec<WalRecord> = self.mirror.iter_from(self.written_end).cloned().collect();
        if !missed.is_empty() {
            let mut buf = Vec::new();
            for record in &missed {
                if frame::encode_value_into(record, self.config.codec, &mut buf).is_err() {
                    return; // unencodable record: stay degraded
                }
            }
            if self.write_to_segment(self.written_end, &buf, missed.len() as u64).is_err() {
                self.dirty_tail = true;
                return;
            }
            self.counters.commits.fetch_add(1, Ordering::Relaxed);
        }
        // The heal only counts once the backfill is *durable*.
        if let Some(_err) = self.sync.wait_idle() {
            self.dirty_tail = true;
            return;
        }
        self.degraded = false;
        self.counters.heal_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Deletes segment files that lie entirely below `oldest` (the oldest
    /// retained checkpoint offset) — their records can never be replayed
    /// again. A segment still open for writing whose records are all below
    /// the window is closed first (the next commit rotates to a fresh
    /// file), so checkpoint-time GC always reclaims the full dead prefix.
    /// Reclaimed files and bytes feed
    /// [`StorageStats::wal_segments_reclaimed`] /
    /// [`StorageStats::wal_bytes_reclaimed`]. Callers must only invoke this
    /// with no commit in flight (`put_checkpoint` commits synchronously
    /// first; recovery runs before the first commit).
    fn collect_segments(&mut self, oldest: u64) {
        while let Some(seg) = self.segments.first() {
            if seg.start + seg.records > oldest {
                break;
            }
            if self.segments.len() == 1 && self.writer.is_some() {
                // Fully-covered open segment: rotate away so it can go too.
                self.writer = None;
            }
            let seg = self.segments.remove(0);
            self.remove_file(&seg.path);
            self.counters.wal_segments_reclaimed.fetch_add(1, Ordering::Relaxed);
            self.counters.wal_bytes_reclaimed.fetch_add(seg.bytes, Ordering::Relaxed);
        }
    }

    /// Writes one checkpoint durably under its live name: temp file, write,
    /// fsync, rename. IO failures are classified for the caller to degrade
    /// on; a crash mid-sequence never leaves a half checkpoint live.
    fn write_checkpoint_file(&mut self, offset: u64, bytes: &[u8]) -> Result<(), IoFailure> {
        let tmp = self.dir.join(format!("ck-{offset}.tmp"));
        let path = self.ck_path(offset);
        let mut file =
            File::create(&tmp).map_err(|e| classify("checkpoint create", self.shard, &e))?;
        file.write_all(bytes).map_err(|e| classify("checkpoint write", self.shard, &e))?;
        if self.config.fsync {
            file.sync_data().map_err(|e| classify("checkpoint fsync", self.shard, &e))?;
            self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        drop(file);
        fs::rename(&tmp, &path).map_err(|e| classify("checkpoint rename", self.shard, &e))?;
        self.cache.invalidate(&path);
        self.counters.checkpoints_written.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_written.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        // Settle in-flight pipelined fsyncs: a cleanly dropped store leaves
        // nothing un-durable behind.
        let _ = self.sync.wait_idle();
    }
}

impl ShardStore for DiskStore {
    fn append(&mut self, record: &WalRecord) -> ServiceResult<u64> {
        let offset = self.mirror.append(record.clone());
        // Wedged stores drop writes silently; degraded stores skip staging
        // too — the mirror holds the record and the heal backfill (keyed on
        // `written_end`) will write it once the disk answers again.
        if !self.wedged && !self.degraded {
            if self.staged_records == 0 {
                self.staged_start = offset;
            }
            // Encode straight into the staging buffer: the group-commit
            // path allocates nothing per record (the buffer is reused
            // across commits once it reaches steady-state capacity).
            let before = self.staged.len();
            frame::encode_value_into(record, self.config.codec, &mut self.staged)?;
            let payload = self.staged.len() - before - frame::FRAME_HEADER;
            self.counters.payload_bytes.fetch_add(payload as u64, Ordering::Relaxed);
            self.staged_records += 1;
        }
        Ok(offset)
    }

    fn commit(&mut self) -> ServiceResult<()> {
        self.commit_begin()?;
        self.commit_wait()
    }

    fn commit_begin(&mut self) -> ServiceResult<()> {
        if self.wedged {
            self.staged.clear();
            self.staged_records = 0;
            return Ok(());
        }
        if self.degraded {
            // Nothing is staged while degraded; the commit is a probe.
            self.staged.clear();
            self.staged_records = 0;
            self.probe_heal();
            return Ok(());
        }
        if self.staged.is_empty() {
            return Ok(());
        }
        self.commit_count += 1;
        let fault = self.faults.take_storage_fault(self.commit_count);
        let staged = std::mem::take(&mut self.staged);
        let staged_records = std::mem::take(&mut self.staged_records);
        let start = self.staged_start;
        match fault {
            Some(FaultKind::TornWrite { keep_bytes }) => {
                // A crash mid-write: a prefix of the staged frames lands on
                // disk (usually cutting a frame in half), then the disk
                // goes dark. Metadata is not updated — this store never
                // reads the torn file again; only a cold start will.
                let keep = (keep_bytes as usize).min(staged.len());
                self.write_to_segment(start, &staged[..keep], 0)
                    .map_err(|f| ServiceError::Storage(f.msg))?;
                self.wedged = true;
                self.counters.wedged.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Some(FaultKind::PartialFsync) => {
                // The write was acknowledged but never reached the platter:
                // nothing lands, the disk goes dark.
                self.wedged = true;
                self.counters.wedged.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Some(FaultKind::CorruptCrc) => {
                // Silent bit rot inside the first staged frame's payload;
                // the commit itself "succeeds".
                let mut staged = staged;
                if staged.len() > frame::FRAME_HEADER {
                    staged[frame::FRAME_HEADER] ^= 0xFF;
                }
                self.write_to_segment(start, &staged, staged_records)
                    .map_err(|f| ServiceError::Storage(f.msg))?;
                self.counters.commits.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            // Self-healing-class IO faults arm the simulated failure modes
            // consumed by the write/retry machinery below.
            Some(FaultKind::TransientIo { fails }) => self.attempt_failures = fails,
            Some(FaultKind::SlowIo { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            Some(FaultKind::IoErrorBurst { len }) => {
                self.outage_commits = len;
                self.outage_permanent = false;
            }
            Some(FaultKind::DiskFull { commits }) => {
                self.outage_commits = commits;
                self.outage_permanent = true;
            }
            _ => {}
        }
        let forced = self.outage_active();
        match self.write_with_retry(start, &staged, staged_records, forced) {
            Ok(()) => {
                self.counters.commits.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_failure) => {
                // Self-healing: the records live on in the mirror; serve
                // from memory and heal once the disk answers again.
                self.enter_degraded();
                Ok(())
            }
        }
    }

    fn commit_wait(&mut self) -> ServiceResult<()> {
        if self.sync.wait_idle().is_some() {
            // A background fsync failed. Stop trusting the disk and heal
            // through the degraded path instead of failing the epoch — the
            // next probe re-fsyncs the tail before re-attaching.
            self.enter_degraded();
        }
        Ok(())
    }

    fn end(&self) -> u64 {
        self.mirror.end()
    }

    fn records_from(&self, from: u64) -> Vec<WalRecord> {
        self.mirror.iter_from(from).cloned().collect()
    }

    fn put_checkpoint(&mut self, checkpoint: Checkpoint) -> ServiceResult<()> {
        // The WAL must be durable up to the checkpoint's offset before the
        // checkpoint file can claim to cover it (write-ahead ordering).
        // While degraded this is the probe that may heal the store just in
        // time for the file write below.
        self.commit()?;
        let offset = checkpoint.wal_offset;
        if !self.wedged && !self.degraded {
            let bytes = frame::encode_value_with(&checkpoint, self.config.codec)?;
            self.counters
                .payload_bytes
                .fetch_add((bytes.len() - frame::FRAME_HEADER) as u64, Ordering::Relaxed);
            if self.write_checkpoint_file(offset, &bytes).is_err() {
                // Checkpoint IO failures degrade like commit failures: the
                // in-memory window below still adopts the checkpoint, so
                // worker-death recovery is unaffected; only the durable
                // copy waits for the heal.
                self.enter_degraded();
            }
        }
        // Retention window update (same shape as the memory backend). An
        // adoption at an already-retained offset replaces in place so the
        // prune below never deletes a live file.
        if self.checkpoints.last().map(|c| c.wal_offset) == Some(offset) {
            self.checkpoints.pop();
        }
        self.checkpoints.push(checkpoint);
        let attached = !self.wedged && !self.degraded;
        while self.checkpoints.len() > RETAINED {
            let stale = self.checkpoints.remove(0);
            if attached {
                self.remove_file(&self.ck_path(stale.wal_offset));
                self.counters.checkpoints_pruned.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(oldest) = self.checkpoints.first().map(|c| c.wal_offset) {
            // Never truncate the mirror past `written_end`: while degraded
            // (or wedged) it still holds records the disk hasn't seen, and
            // the heal backfill replays exactly `written_end..end`.
            self.mirror.truncate_to(oldest.min(self.written_end));
            if attached {
                self.collect_segments(oldest);
            }
        }
        Ok(())
    }

    fn checkpoints(&self) -> Vec<Checkpoint> {
        self.checkpoints.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Fault;
    use rrs_core::ColorId;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rrs-disk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn submit(tenant: u64, n: u64) -> WalRecord {
        WalRecord::Submit { tenant, arrivals: vec![(ColorId(0), n)] }
    }

    fn open_store(backend: &mut DiskBackend, shard: usize) -> Box<dyn ShardStore> {
        backend.open_shard(shard, ShardFaults::none()).unwrap()
    }

    #[test]
    fn committed_records_survive_reopen() {
        let root = temp_root("roundtrip");
        let mut backend = DiskBackend::new(DiskConfig::new(&root));
        {
            let mut store = open_store(&mut backend, 0);
            for i in 0..5 {
                store.append(&submit(i, i + 1)).unwrap();
                store.append(&WalRecord::Tick).unwrap();
            }
            store.commit().unwrap();
            // Staged-but-uncommitted records are visible in memory only.
            store.append(&submit(99, 1)).unwrap();
            assert_eq!(store.end(), 11);
        }
        let mut backend2 = DiskBackend::new(DiskConfig::new(&root));
        let store = open_store(&mut backend2, 0);
        assert_eq!(store.end(), 10, "the uncommitted record is gone");
        let records = store.records_from(0);
        assert_eq!(records.len(), 10);
        assert_eq!(records[0], submit(0, 1));
        assert_eq!(records[9], WalRecord::Tick);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn segments_rotate_and_old_ones_are_collected() {
        let root = temp_root("rotate");
        let mut cfg = DiskConfig::new(&root);
        cfg.max_segment_bytes = 64; // force rotation every commit or two
        cfg.fsync = false;
        let mut backend = DiskBackend::new(cfg.clone());
        let mut store = open_store(&mut backend, 0);
        for i in 0..20 {
            store.append(&submit(i, 1)).unwrap();
            store.commit().unwrap();
        }
        let segs = |root: &Path| {
            let mut v: Vec<String> = fs::read_dir(root.join("shard-000"))
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .filter(|n| n.ends_with(".seg"))
                .collect();
            v.sort();
            v
        };
        assert!(segs(&root).len() > 3, "rotation produced several segments");
        // Adopt checkpoints past the end: everything but the live segment
        // is garbage-collected.
        let ck = |off| Checkpoint { wal_offset: off, ..Checkpoint::genesis(0) };
        store.put_checkpoint(ck(19)).unwrap();
        store.put_checkpoint(ck(20)).unwrap();
        store.put_checkpoint(ck(20)).unwrap(); // same-offset re-adoption is safe
        assert!(segs(&root).len() <= 2, "collected: {:?}", segs(&root));
        // And the survivors still recover.
        let mut backend2 = DiskBackend::new(cfg);
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 20);
        assert_eq!(store2.checkpoints().last().unwrap().wal_offset, 20);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_gc_reclaims_segments_and_counts_bytes() {
        let root = temp_root("gc-count");
        let mut cfg = DiskConfig::new(&root);
        cfg.max_segment_bytes = 64;
        cfg.fsync = false;
        let mut backend = DiskBackend::new(cfg);
        let mut store = open_store(&mut backend, 0);
        for i in 0..20 {
            store.append(&submit(i, 1)).unwrap();
            store.commit().unwrap();
        }
        assert_eq!(backend.stats().wal_segments_reclaimed, 0, "no GC before a checkpoint");
        let ck = |off| Checkpoint { wal_offset: off, ..Checkpoint::genesis(0) };
        store.put_checkpoint(ck(19)).unwrap();
        store.put_checkpoint(ck(20)).unwrap();
        let stats = backend.stats();
        assert!(
            stats.wal_segments_reclaimed >= 3,
            "checkpoint-time GC reclaimed the dead prefix: {stats}"
        );
        assert!(stats.wal_bytes_reclaimed > 0, "reclaimed bytes counted: {stats}");
        assert!(
            stats.wal_bytes_reclaimed <= stats.bytes_written,
            "cannot reclaim more than was written: {stats}"
        );
        // New appends after GC still commit and recover.
        store.append(&WalRecord::Tick).unwrap();
        store.commit().unwrap();
        drop(store);
        let mut backend2 = DiskBackend::new(DiskConfig { fsync: false, ..DiskConfig::new(&root) });
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 21);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn cold_start_reclaims_segments_below_the_retained_window() {
        let root = temp_root("gc-cold");
        let mut cfg = DiskConfig::new(&root);
        cfg.max_segment_bytes = 64;
        cfg.fsync = false;
        {
            // A full contiguous log 0..20 with no checkpoint adoptions, so
            // checkpoint-time GC never ran and every segment file survives.
            let mut backend = DiskBackend::new(cfg.clone());
            let mut store = open_store(&mut backend, 0);
            for i in 0..20 {
                store.append(&submit(i, 1)).unwrap();
                store.commit().unwrap();
            }
        }
        // Plant the checkpoint files by hand (the state a process that died
        // degraded — durable checkpoints, skipped GC — leaves behind).
        let shard_dir = root.join("shard-000");
        for off in [18u64, 20] {
            let ck = Checkpoint { wal_offset: off, ..Checkpoint::genesis(0) };
            fs::write(shard_dir.join(format!("ck-{off}.ck")), frame::encode_value(&ck).unwrap())
                .unwrap();
        }
        let seg_starts = |dir: &Path| {
            let mut v: Vec<u64> = fs::read_dir(dir)
                .unwrap()
                .filter_map(|e| {
                    let name = e.unwrap().file_name().to_string_lossy().into_owned();
                    name.strip_prefix("wal-")
                        .and_then(|s| s.strip_suffix(".seg"))
                        .and_then(|s| s.parse().ok())
                })
                .collect();
            v.sort_unstable();
            v
        };
        let before = seg_starts(&shard_dir);
        assert!(before.len() > 3, "several dead segments on disk: {before:?}");
        let mut backend2 = DiskBackend::new(cfg);
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 20);
        assert_eq!(store2.records_from(0).len(), 2, "mirror truncated to the window");
        let after = seg_starts(&shard_dir);
        assert!(after.len() < before.len(), "cold start reclaimed: {before:?} -> {after:?}");
        // A closed segment spans its start to the next one's start; any
        // closed segment ending at or below the oldest retained checkpoint
        // (18) was wholly dead and must be gone.
        for pair in after.windows(2) {
            assert!(pair[1] > 18, "segment wal-{}.seg lies wholly below the window", pair[0]);
        }
        let stats = backend2.stats();
        assert!(stats.wal_segments_reclaimed > 0, "reclaims counted at cold start: {stats}");
        assert!(stats.wal_bytes_reclaimed > 0, "bytes counted at cold start: {stats}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_write_fault_wedges_and_cold_start_recovers_the_prefix() {
        let root = temp_root("torn");
        let mut backend = DiskBackend::new(DiskConfig::new(&root));
        let faults = Arc::new(ShardFaults::new(vec![Fault {
            shard: 0,
            at_tick: 3, // third group commit tears
            kind: FaultKind::TornWrite { keep_bytes: 5 },
        }]));
        let mut store = backend.open_shard(0, faults).unwrap();
        for i in 0..6 {
            store.append(&submit(i, 1)).unwrap();
            store.commit().unwrap();
        }
        assert_eq!(store.end(), 6, "the live service saw every record");
        assert_eq!(backend.stats().wedged, 1);
        let mut backend2 = DiskBackend::new(DiskConfig::new(&root));
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 2, "commits 1-2 durable, 3 torn, 4-6 dark");
        assert_eq!(backend2.stats().torn_tails_repaired, 1);
        // The repaired store accepts new appends cleanly.
        drop(store2);
        let mut store2 = open_store(&mut backend2, 0);
        store2.append(&WalRecord::Tick).unwrap();
        store2.commit().unwrap();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_crc_fault_is_caught_by_recovery() {
        let root = temp_root("crc");
        let mut backend = DiskBackend::new(DiskConfig::new(&root));
        let faults = Arc::new(ShardFaults::new(vec![Fault {
            shard: 0,
            at_tick: 2,
            kind: FaultKind::CorruptCrc,
        }]));
        let mut store = backend.open_shard(0, faults).unwrap();
        for i in 0..4 {
            store.append(&submit(i, 1)).unwrap();
            store.commit().unwrap();
        }
        let mut backend2 = DiskBackend::new(DiskConfig::new(&root));
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 1, "scan stops at the rotted frame");
        assert_eq!(backend2.stats().corrupt_frames_dropped, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_checkpoint_files_are_skipped() {
        let root = temp_root("badck");
        let cfg = DiskConfig::new(&root);
        let mut backend = DiskBackend::new(cfg.clone());
        let mut store = open_store(&mut backend, 0);
        for _ in 0..4 {
            store.append(&WalRecord::Tick).unwrap();
        }
        store.commit().unwrap();
        store
            .put_checkpoint(Checkpoint { wal_offset: 4, ..Checkpoint::genesis(0) })
            .unwrap();
        drop(store);
        // Rot the checkpoint file on disk.
        let ck = root.join("shard-000").join("ck-4.ck");
        let mut bytes = fs::read(&ck).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&ck, bytes).unwrap();
        let mut backend2 = DiskBackend::new(cfg);
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(backend2.stats().checkpoints_skipped, 1);
        // Falls back to genesis + full replay: all four ticks recovered.
        let cks = store2.checkpoints();
        assert_eq!(cks.len(), 1);
        assert_eq!(cks[0].wal_offset, 0, "genesis fallback");
        assert_eq!(store2.end(), 4);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn transient_io_errors_retry_in_place_without_degrading() {
        let root = temp_root("transient");
        let mut cfg = DiskConfig::new(&root);
        cfg.io_backoff = Duration::from_micros(10); // keep the test fast
        let mut backend = DiskBackend::new(cfg.clone());
        let faults = Arc::new(ShardFaults::new(vec![Fault {
            shard: 0,
            at_tick: 2, // second group commit hits 2 transient failures
            kind: FaultKind::TransientIo { fails: 2 },
        }]));
        let mut store = backend.open_shard(0, faults).unwrap();
        for i in 0..4 {
            store.append(&submit(i, 1)).unwrap();
            store.commit().unwrap();
        }
        let s = backend.stats();
        assert_eq!(s.retries, 2, "both injected failures were retried");
        assert_eq!(s.degraded_commits, 0, "retry absorbed the glitch in place");
        assert_eq!(s.heal_events, 0);
        assert_eq!(s.commits, 4);
        drop(store);
        let mut backend2 = DiskBackend::new(cfg);
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 4, "nothing was lost");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn io_error_burst_degrades_then_heals_with_full_durability() {
        let root = temp_root("burst");
        let mut cfg = DiskConfig::new(&root);
        cfg.io_backoff = Duration::from_micros(10);
        let mut backend = DiskBackend::new(cfg.clone());
        let faults = Arc::new(ShardFaults::new(vec![Fault {
            shard: 0,
            at_tick: 2, // commits 2 and 3 fail wholesale
            kind: FaultKind::IoErrorBurst { len: 2 },
        }]));
        let mut store = backend.open_shard(0, faults).unwrap();
        for i in 0..6 {
            store.append(&submit(i, 1)).unwrap();
            store.commit().unwrap();
        }
        assert_eq!(store.end(), 6, "the mirror served every record throughout");
        let s = backend.stats();
        assert!(s.retries > 0, "the burst exhausted the retry budget");
        assert!(s.degraded_commits >= 2, "commits during the outage were probes");
        assert_eq!(s.heal_events, 1, "one heal once the disk answered");
        drop(store);
        // Cold start: FULL durability, including the records appended while
        // the store was degraded — the heal backfilled them from the mirror.
        let mut backend2 = DiskBackend::new(cfg);
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 6, "degraded-era records were backfilled");
        assert_eq!(store2.records_from(0), (0..6).map(|i| submit(i, 1)).collect::<Vec<_>>());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_full_degrades_immediately_without_burning_retries() {
        let root = temp_root("full");
        let cfg = DiskConfig::new(&root);
        let mut backend = DiskBackend::new(cfg.clone());
        let faults = Arc::new(ShardFaults::new(vec![Fault {
            shard: 0,
            at_tick: 2,
            kind: FaultKind::DiskFull { commits: 1 },
        }]));
        let mut store = backend.open_shard(0, faults).unwrap();
        for i in 0..4 {
            store.append(&submit(i, 1)).unwrap();
            store.commit().unwrap();
        }
        let s = backend.stats();
        assert_eq!(s.retries, 0, "permanent-class errors skip the retry loop");
        assert!(s.degraded_commits >= 1);
        assert_eq!(s.heal_events, 1, "healed on the first post-outage probe");
        drop(store);
        let mut backend2 = DiskBackend::new(cfg);
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 4);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unreadable_segment_is_quarantined_with_a_manifest_line() {
        let root = temp_root("quarantine");
        let cfg = DiskConfig::new(&root);
        {
            let mut backend = DiskBackend::new(cfg.clone());
            let mut store = open_store(&mut backend, 0);
            for _ in 0..3 {
                store.append(&WalRecord::Tick).unwrap();
            }
            store.commit().unwrap();
        }
        // Rot the whole segment: zero valid frames survive.
        let seg = root.join("shard-000").join("wal-0.seg");
        fs::write(&seg, vec![0xFFu8; 16]).unwrap();
        let mut backend2 = DiskBackend::new(cfg);
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 0, "nothing readable recovered");
        assert_eq!(backend2.stats().quarantines, 1);
        assert!(!seg.exists(), "the damaged file left the live directory");
        let qdir = root.join("shard-000").join(".quarantine");
        assert!(qdir.join("wal-0.seg").exists(), "evidence preserved");
        let manifest = fs::read_to_string(qdir.join("MANIFEST")).unwrap();
        assert!(
            manifest.contains("wal-0.seg") && manifest.contains("no valid frames"),
            "manifest names the file and the reason: {manifest:?}"
        );
        // The quarantined store keeps working.
        drop(store2);
        let mut store3 = open_store(&mut backend2, 0);
        store3.append(&WalRecord::Tick).unwrap();
        store3.commit().unwrap();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn pipelined_fsync_barrier_preserves_group_commit_durability() {
        let root = temp_root("pipeline");
        let cfg = DiskConfig::new(&root);
        assert!(cfg.pipeline_fsync && cfg.fsync, "pipelining is the default");
        {
            let mut backend = DiskBackend::new(cfg.clone());
            let mut store = open_store(&mut backend, 0);
            // Several epochs in flight before one barrier.
            for i in 0..5 {
                store.append(&submit(i, 1)).unwrap();
                store.commit_begin().unwrap();
            }
            store.commit_wait().unwrap();
            assert!(backend.stats().fsyncs >= 1, "background thread fsynced");
        }
        let mut backend2 = DiskBackend::new(cfg);
        let store2 = open_store(&mut backend2, 0);
        assert_eq!(store2.end(), 5, "every pipelined epoch is durable after the barrier");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_hits_the_cache() {
        let root = temp_root("cache");
        let mut cfg = DiskConfig::new(&root);
        cfg.fsync = false;
        let backend_cfg = cfg.clone();
        {
            let mut backend = DiskBackend::new(cfg);
            let mut store = open_store(&mut backend, 0);
            for _ in 0..3 {
                store.append(&WalRecord::Tick).unwrap();
            }
            store.commit().unwrap();
        }
        let mut backend = DiskBackend::new(backend_cfg);
        let _first = open_store(&mut backend, 0);
        let misses_after_first = backend.stats().cache.misses;
        let _second = open_store(&mut backend, 0);
        let s = backend.stats();
        assert!(s.cache.hits >= 1, "second open reuses cached segment bytes");
        assert_eq!(s.cache.misses, misses_after_first, "no new loads");
        let _ = fs::remove_dir_all(&root);
    }
}
