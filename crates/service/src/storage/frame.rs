//! CRC32-framed record encoding for on-disk WAL segments and checkpoints.
//!
//! Every durable record is one *frame*:
//!
//! ```text
//! +----------------+----------------+====================+
//! | len: u32 LE    | crc: u32 LE    | payload (len bytes)|
//! +----------------+----------------+====================+
//! ```
//!
//! `crc` is the CRC-32 (IEEE 802.3) of the payload alone, so a frame is
//! self-validating: a reader can tell a **torn** frame (the file ends before
//! `8 + len` bytes — the classic torn write of a crash mid-append) from a
//! **corrupt** one (all bytes present but the checksum disagrees — silent
//! bit rot or an injected fault). Recovery treats both as the end of the
//! valid log prefix; the distinction only feeds different counters.
//!
//! Payloads are `serde_json` documents ([`crate::WalRecord`] /
//! [`crate::Checkpoint`]): self-describing, versionable, and identical to
//! the snapshot wire format the service already commits to. The framing
//! layer is format-agnostic — it moves bytes.

use crate::error::{ServiceError, ServiceResult};
use serde::{Deserialize, Serialize};

/// Bytes of frame header before the payload (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the same
/// polynomial zip/png/ethernet use. Table-driven, built at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    // 256-entry table for the reflected polynomial 0xEDB88320.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does — a torn write. The bytes up
    /// to the frame start are still a valid log prefix.
    Torn,
    /// The frame is complete but its checksum (or payload decoding)
    /// disagrees — corruption.
    Corrupt,
}

/// Appends one frame around `payload` to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decodes the frame starting at `buf[0]`, returning the payload slice and
/// the total frame length consumed.
pub fn decode_frame(buf: &[u8]) -> Result<(&[u8], usize), FrameError> {
    if buf.len() < FRAME_HEADER {
        return Err(FrameError::Torn);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let total = FRAME_HEADER + len;
    if buf.len() < total {
        return Err(FrameError::Torn);
    }
    let payload = &buf[FRAME_HEADER..total];
    if crc32(payload) != crc {
        return Err(FrameError::Corrupt);
    }
    Ok((payload, total))
}

/// Serializes a value into one framed record.
pub fn encode_value<T: Serialize>(value: &T) -> ServiceResult<Vec<u8>> {
    let payload = serde_json::to_vec(value)
        .map_err(|e| ServiceError::Storage(format!("encode record: {e}")))?;
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    encode_frame(&payload, &mut out);
    Ok(out)
}

/// Decodes the frame at `buf[0]` into a value, returning it with the frame
/// length consumed. A payload that passes the CRC but fails to deserialize
/// is reported as [`FrameError::Corrupt`].
pub fn decode_value<T: Deserialize>(buf: &[u8]) -> Result<(T, usize), FrameError> {
    let (payload, consumed) = decode_frame(buf)?;
    let value = serde_json::from_slice(payload).map_err(|_| FrameError::Corrupt)?;
    Ok((value, consumed))
}

/// Walks frames from the start of `buf`, decoding values until the buffer is
/// exhausted or a frame fails. Returns the decoded values, the byte length
/// of the valid prefix, and the error that stopped the scan (`None` = the
/// whole buffer was valid frames).
pub fn scan_values<T: Deserialize>(buf: &[u8]) -> (Vec<T>, usize, Option<FrameError>) {
    let mut values = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        match decode_value::<T>(&buf[at..]) {
            Ok((value, consumed)) => {
                values.push(value);
                at += consumed;
            }
            Err(e) => return (values, at, Some(e)),
        }
    }
    (values, at, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalRecord;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips() {
        let mut buf = Vec::new();
        encode_frame(b"hello", &mut buf);
        encode_frame(b"", &mut buf);
        let (p1, n1) = decode_frame(&buf).unwrap();
        assert_eq!(p1, b"hello");
        let (p2, n2) = decode_frame(&buf[n1..]).unwrap();
        assert_eq!(p2, b"");
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn torn_and_corrupt_are_distinguished() {
        let mut buf = Vec::new();
        encode_frame(b"payload", &mut buf);
        // Every strict prefix is torn, never corrupt.
        for cut in 0..buf.len() {
            assert_eq!(decode_frame(&buf[..cut]).unwrap_err(), FrameError::Torn, "cut {cut}");
        }
        // A bit flip anywhere in a complete frame is corrupt (flipping a
        // length byte may also read as torn, which is an acceptable answer
        // for a damaged header — it still ends the valid prefix).
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(decode_frame(&bad).is_err(), "flip {i} accepted");
        }
    }

    #[test]
    fn values_scan_stops_at_the_first_bad_frame() {
        let mut buf = Vec::new();
        let records = vec![WalRecord::Tick, WalRecord::Submit {
            tenant: 3,
            arrivals: vec![(rrs_core::ColorId(1), 2)],
        }];
        for r in &records {
            buf.extend_from_slice(&encode_value(r).unwrap());
        }
        let valid_len = buf.len();
        buf.extend_from_slice(&[7, 0, 0, 0]); // half a header: torn tail
        let (decoded, prefix, err) = scan_values::<WalRecord>(&buf);
        assert_eq!(decoded, records);
        assert_eq!(prefix, valid_len);
        assert_eq!(err, Some(FrameError::Torn));
    }
}
