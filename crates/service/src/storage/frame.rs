//! CRC32-framed record encoding for on-disk WAL segments and checkpoints.
//!
//! Every durable record is one *frame*:
//!
//! ```text
//! +----------------+----------------+====================+
//! | len: u32 LE    | crc: u32 LE    | payload (len bytes)|
//! +----------------+----------------+====================+
//! ```
//!
//! `crc` is the CRC-32 (IEEE 802.3) of the payload alone, so a frame is
//! self-validating: a reader can tell a **torn** frame (the file ends before
//! `8 + len` bytes — the classic torn write of a crash mid-append) from a
//! **corrupt** one (all bytes present but the checksum disagrees — silent
//! bit rot or an injected fault). Recovery treats both as the end of the
//! valid log prefix; the distinction only feeds different counters.
//!
//! Payloads carry [`crate::WalRecord`] / [`crate::Checkpoint`] documents in
//! one of two self-describing formats, sniffed from the first payload byte:
//!
//! - **Binary** ([`Codec::Binary`], the default): an `rrs-codec` document
//!   prefixed with [`BINARY_TAG`] (`0xB1`). The tag can never collide with
//!   JSON because every JSON document here starts with an ASCII byte
//!   (`{`, `[`, `"`, a digit, `-`, or a literal keyword), all `< 0x80`.
//! - **JSON** ([`Codec::Json`]): a bare `serde_json` document, bit-identical
//!   to what earlier releases wrote. Kept as the conformance oracle
//!   (`--codec json`) and for reading old segments/checkpoints.
//!
//! Decoding never consults configuration — a directory may freely mix
//! formats (e.g. JSON segments written before an upgrade followed by binary
//! appends), and recovery replays both bit-identically.

use crate::error::{ServiceError, ServiceResult};
use serde::{Deserialize, Serialize};

/// Bytes of frame header before the payload (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// First payload byte of a binary-codec frame. Deliberately `> 0x7F` so it
/// cannot be the first byte of any JSON document (always printable ASCII).
pub const BINARY_TAG: u8 = 0xB1;

/// 8×256-entry CRC-32 tables for the reflected polynomial `0xEDB88320`,
/// built at first use. `table[0]` is the classic byte-at-a-time table;
/// `table[k]` advances a byte through `k` additional zero bytes, which is
/// what lets [`crc32`] fold eight input bytes per iteration.
fn crc32_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 8];
        for (i, entry) in tables[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = tables[k - 1][i];
                tables[k][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        tables
    })
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the same
/// polynomial zip/png/ethernet use. Slice-by-8: processes the input in
/// 8-byte gulps with one table lookup per byte but no inter-byte carry
/// chain, ~4-5× the byte-at-a-time loop on long payloads. Bit-identical to
/// the classic single-table implementation (unit-tested against it).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = crc32_tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][chunk[4] as usize]
            ^ t[2][chunk[5] as usize]
            ^ t[1][chunk[6] as usize]
            ^ t[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Payload serialization format for framed records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Codec {
    /// Compact `rrs-codec` binary document, tagged with [`BINARY_TAG`].
    #[default]
    Binary,
    /// Plain-text `serde_json` document (untagged; the pre-binary format).
    /// Slower and larger; kept as the conformance oracle.
    Json,
}

impl Codec {
    /// Parses a CLI/config spelling.
    pub fn parse(s: &str) -> Option<Codec> {
        match s {
            "binary" => Some(Codec::Binary),
            "json" => Some(Codec::Json),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Codec::Binary => "binary",
            Codec::Json => "json",
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does — a torn write. The bytes up
    /// to the frame start are still a valid log prefix.
    Torn,
    /// The frame is complete but its checksum (or payload decoding)
    /// disagrees — corruption.
    Corrupt,
}

/// Appends one frame around `payload` to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decodes the frame starting at `buf[0]`, returning the payload slice and
/// the total frame length consumed.
pub fn decode_frame(buf: &[u8]) -> Result<(&[u8], usize), FrameError> {
    if buf.len() < FRAME_HEADER {
        return Err(FrameError::Torn);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let total = FRAME_HEADER + len;
    if buf.len() < total {
        return Err(FrameError::Torn);
    }
    let payload = &buf[FRAME_HEADER..total];
    if crc32(payload) != crc {
        return Err(FrameError::Corrupt);
    }
    Ok((payload, total))
}

/// Serializes `value` in `codec` format and appends the complete frame to
/// `out` in place — header first, payload encoded directly behind it, then
/// the `len`/`crc` fields backfilled. No intermediate payload allocation:
/// `out` doubles as the encode scratch, which is what lets the disk store
/// stage an entire group commit into one reusable buffer.
pub fn encode_value_into<T: Serialize>(
    value: &T,
    codec: Codec,
    out: &mut Vec<u8>,
) -> ServiceResult<()> {
    let base = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    match codec {
        Codec::Binary => {
            out.push(BINARY_TAG);
            rrs_codec::encode_into(value, out);
        }
        Codec::Json => {
            let s = serde_json::to_string(value)
                .map_err(|e| ServiceError::Storage(format!("encode record: {e}")))?;
            out.extend_from_slice(s.as_bytes());
        }
    }
    let payload_len = out.len() - base - FRAME_HEADER;
    let crc = crc32(&out[base + FRAME_HEADER..]);
    out[base..base + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[base + 4..base + 8].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

/// Serializes a value into one framed record in `codec` format.
pub fn encode_value_with<T: Serialize>(value: &T, codec: Codec) -> ServiceResult<Vec<u8>> {
    let mut out = Vec::new();
    encode_value_into(value, codec, &mut out)?;
    Ok(out)
}

/// Serializes a value into one framed JSON record (the legacy format;
/// binary callers use [`encode_value_into`] / [`encode_value_with`]).
pub fn encode_value<T: Serialize>(value: &T) -> ServiceResult<Vec<u8>> {
    encode_value_with(value, Codec::Json)
}

/// Deserializes one frame *payload* (already CRC-validated), sniffing the
/// format from its first byte.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    match payload.first() {
        Some(&BINARY_TAG) => {
            rrs_codec::from_slice(&payload[1..]).map_err(|_| FrameError::Corrupt)
        }
        _ => serde_json::from_slice(payload).map_err(|_| FrameError::Corrupt),
    }
}

/// Decodes the frame at `buf[0]` into a value, returning it with the frame
/// length consumed. The payload format (binary vs JSON) is sniffed per
/// frame, so mixed-format logs decode transparently. A payload that passes
/// the CRC but fails to deserialize is reported as [`FrameError::Corrupt`].
pub fn decode_value<T: Deserialize>(buf: &[u8]) -> Result<(T, usize), FrameError> {
    let (payload, consumed) = decode_frame(buf)?;
    let value = decode_payload(payload)?;
    Ok((value, consumed))
}

/// Walks frames from the start of `buf`, decoding values until the buffer is
/// exhausted or a frame fails. Returns the decoded values, the byte length
/// of the valid prefix, and the error that stopped the scan (`None` = the
/// whole buffer was valid frames).
pub fn scan_values<T: Deserialize>(buf: &[u8]) -> (Vec<T>, usize, Option<FrameError>) {
    let mut values = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        match decode_value::<T>(&buf[at..]) {
            Ok((value, consumed)) => {
                values.push(value);
                at += consumed;
            }
            Err(e) => return (values, at, Some(e)),
        }
    }
    (values, at, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalRecord;

    /// The pre-slice-by-8 implementation, kept as the reference the fast
    /// path must match bit-for-bit.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let t = &crc32_tables()[0];
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = t[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_slice_by_8_matches_bytewise() {
        // Deterministic pseudo-random buffers at every alignment/length
        // class around the 8-byte gulp boundary.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut buf = Vec::new();
        for _ in 0..4096 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            buf.push((state >> 56) as u8);
        }
        for len in (0..64).chain([255, 1000, 4095, 4096]) {
            for offset in 0..4.min(buf.len() - len) {
                let s = &buf[offset..offset + len];
                assert_eq!(crc32(s), crc32_bytewise(s), "len {len} offset {offset}");
            }
        }
    }

    #[test]
    fn frame_roundtrips() {
        let mut buf = Vec::new();
        encode_frame(b"hello", &mut buf);
        encode_frame(b"", &mut buf);
        let (p1, n1) = decode_frame(&buf).unwrap();
        assert_eq!(p1, b"hello");
        let (p2, n2) = decode_frame(&buf[n1..]).unwrap();
        assert_eq!(p2, b"");
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn torn_and_corrupt_are_distinguished() {
        let mut buf = Vec::new();
        encode_frame(b"payload", &mut buf);
        // Every strict prefix is torn, never corrupt.
        for cut in 0..buf.len() {
            assert_eq!(decode_frame(&buf[..cut]).unwrap_err(), FrameError::Torn, "cut {cut}");
        }
        // A bit flip anywhere in a complete frame is corrupt (flipping a
        // length byte may also read as torn, which is an acceptable answer
        // for a damaged header — it still ends the valid prefix).
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(decode_frame(&bad).is_err(), "flip {i} accepted");
        }
    }

    #[test]
    fn values_scan_stops_at_the_first_bad_frame() {
        let mut buf = Vec::new();
        let records = vec![WalRecord::Tick, WalRecord::Submit {
            tenant: 3,
            arrivals: vec![(rrs_core::ColorId(1), 2)],
        }];
        for r in &records {
            buf.extend_from_slice(&encode_value(r).unwrap());
        }
        let valid_len = buf.len();
        buf.extend_from_slice(&[7, 0, 0, 0]); // half a header: torn tail
        let (decoded, prefix, err) = scan_values::<WalRecord>(&buf);
        assert_eq!(decoded, records);
        assert_eq!(prefix, valid_len);
        assert_eq!(err, Some(FrameError::Torn));
    }

    #[test]
    fn both_codecs_roundtrip_and_json_stays_legacy_compatible() {
        let record = WalRecord::Submit {
            tenant: 42,
            arrivals: vec![(rrs_core::ColorId(7), 3), (rrs_core::ColorId(0), 1)],
        };
        for codec in [Codec::Binary, Codec::Json] {
            let buf = encode_value_with(&record, codec).unwrap();
            let (back, n) = decode_value::<WalRecord>(&buf).unwrap();
            assert_eq!(back, record);
            assert_eq!(n, buf.len());
        }
        // The JSON frame must be byte-identical to what the legacy
        // json-only encoder produced (old readers depend on it).
        let legacy = {
            let payload = serde_json::to_vec(&record).unwrap();
            let mut out = Vec::new();
            encode_frame(&payload, &mut out);
            out
        };
        assert_eq!(encode_value_with(&record, Codec::Json).unwrap(), legacy);
        // Binary frames are smaller and carry the tag byte.
        let bin = encode_value_with(&record, Codec::Binary).unwrap();
        assert_eq!(bin[FRAME_HEADER], BINARY_TAG);
        assert!(bin.len() < legacy.len(), "{} !< {}", bin.len(), legacy.len());
    }

    #[test]
    fn mixed_format_log_scans_transparently() {
        let records = vec![
            WalRecord::Tick,
            WalRecord::Submit { tenant: 1, arrivals: vec![(rrs_core::ColorId(2), 5)] },
            WalRecord::Tick,
        ];
        let mut buf = Vec::new();
        encode_value_into(&records[0], Codec::Json, &mut buf).unwrap();
        encode_value_into(&records[1], Codec::Binary, &mut buf).unwrap();
        encode_value_into(&records[2], Codec::Json, &mut buf).unwrap();
        let (decoded, prefix, err) = scan_values::<WalRecord>(&buf);
        assert_eq!(decoded, records);
        assert_eq!(prefix, buf.len());
        assert_eq!(err, None);
    }

    #[test]
    fn encode_value_into_appends_without_disturbing_prefix() {
        let mut buf = b"prefix".to_vec();
        encode_value_into(&WalRecord::Tick, Codec::Binary, &mut buf).unwrap();
        assert_eq!(&buf[..6], b"prefix");
        let (v, n) = decode_value::<WalRecord>(&buf[6..]).unwrap();
        assert_eq!(v, WalRecord::Tick);
        assert_eq!(6 + n, buf.len());
    }
}
