//! The in-memory storage backend: the supervisor's original WAL +
//! checkpoint retention, behind the [`ShardStore`] contract.
//!
//! This is the conformance oracle for [`super::DiskBackend`]: same offsets,
//! same retention count, same genesis seeding, same truncation-on-adoption.
//! `commit` is a no-op — memory is "durable" for exactly as long as the
//! process lives, which is the honesty gap the disk backend closes.

use super::{ShardStore, StorageBackend, StorageStats};
use crate::error::ServiceResult;
use crate::faults::ShardFaults;
use crate::wal::{Checkpoint, Wal, WalRecord};
use std::sync::Arc;

/// Checkpoints retained per shard (newest-first fallback during recovery,
/// so one corrupted checkpoint cannot brick a shard).
pub(crate) const RETAINED: usize = 2;

/// Process-memory storage: the original supervisor behavior.
#[derive(Debug, Default)]
pub struct MemoryBackend;

impl MemoryBackend {
    /// A memory backend (stateless factory).
    pub fn new() -> Self {
        MemoryBackend
    }
}

impl StorageBackend for MemoryBackend {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn open_shard(
        &mut self,
        shard: usize,
        _faults: Arc<ShardFaults>,
    ) -> ServiceResult<Box<dyn ShardStore>> {
        Ok(Box::new(MemoryStore {
            wal: Wal::new(),
            checkpoints: vec![Checkpoint::genesis(shard)],
        }))
    }

    fn stats(&self) -> StorageStats {
        StorageStats { backend: "memory".into(), ..StorageStats::default() }
    }
}

/// One shard's in-memory journal and checkpoint window.
#[derive(Debug)]
struct MemoryStore {
    wal: Wal,
    /// Oldest → newest; at most [`RETAINED`] entries.
    checkpoints: Vec<Checkpoint>,
}

impl ShardStore for MemoryStore {
    fn append(&mut self, record: &WalRecord) -> ServiceResult<u64> {
        Ok(self.wal.append(record.clone()))
    }

    fn commit(&mut self) -> ServiceResult<()> {
        Ok(())
    }

    fn end(&self) -> u64 {
        self.wal.end()
    }

    fn records_from(&self, from: u64) -> Vec<WalRecord> {
        self.wal.iter_from(from).cloned().collect()
    }

    fn put_checkpoint(&mut self, checkpoint: Checkpoint) -> ServiceResult<()> {
        self.checkpoints.push(checkpoint);
        if self.checkpoints.len() > RETAINED {
            self.checkpoints.remove(0);
        }
        if let Some(oldest) = self.checkpoints.first() {
            self.wal.truncate_to(oldest.wal_offset);
        }
        Ok(())
    }

    fn checkpoints(&self) -> Vec<Checkpoint> {
        self.checkpoints.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_matches_the_original_seat_behavior() {
        let mut backend = MemoryBackend::new();
        let mut store = backend.open_shard(0, ShardFaults::none()).unwrap();
        // Starts with genesis.
        let cks = store.checkpoints();
        assert_eq!(cks.len(), 1);
        assert_eq!(cks[0].wal_offset, 0);
        for _ in 0..6 {
            store.append(&WalRecord::Tick).unwrap();
        }
        store.commit().unwrap();
        assert_eq!(store.end(), 6);
        assert_eq!(store.records_from(4).len(), 2);
        // Adopt checkpoints at offsets 2 and 5: genesis rotates out, records
        // below offset 2 are garbage-collected.
        for offset in [2u64, 5] {
            let ck = Checkpoint { wal_offset: offset, ..Checkpoint::genesis(0) };
            store.put_checkpoint(ck).unwrap();
        }
        let cks = store.checkpoints();
        assert_eq!(cks.iter().map(|c| c.wal_offset).collect::<Vec<_>>(), vec![2, 5]);
        assert_eq!(store.records_from(0).len(), 4, "offsets 2..6 retained");
        assert_eq!(store.end(), 6, "absolute offsets survive truncation");
    }
}
