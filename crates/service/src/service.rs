//! The multi-tenant scheduler service: a fixed set of shards, each a worker
//! thread, with tenants hash-partitioned across them.

use crate::error::{ServiceError, ServiceResult};
use crate::shard::{
    restore_tenants, spawn_shard, Command, ShardHandle, ShardSnapshot, TenantId,
};
use crate::stats::ServiceStats;
use crate::tenant::TenantSpec;
use rrs_core::{ColorId, RunResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Service topology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Number of shard workers.
    pub shards: usize,
    /// Bounded command-queue capacity per shard.
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { shards: 4, queue_capacity: 128 }
    }
}

/// Full-service snapshot: one [`ShardSnapshot`] per shard, in shard order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// The topology at capture time.
    pub config: ServiceConfig,
    /// Per-shard captures.
    pub shards: Vec<ShardSnapshot>,
}

impl ServiceSnapshot {
    /// Job conservation across every tenant of every shard.
    pub fn conserves_jobs(&self) -> bool {
        self.shards.iter().all(ShardSnapshot::conserves_jobs)
    }
}

/// The shard a tenant id maps to under a given shard count.
///
/// Fibonacci hashing: multiply by 2^64/φ and keep the high bits, which
/// spreads sequential ids evenly across small shard counts. Routing is a pure
/// function of `(id, shards)`, shared by [`Service`] and
/// [`crate::Supervisor`] so restores and cross-topology comparisons place
/// tenants identically.
pub fn shard_for(id: TenantId, shards: usize) -> usize {
    let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    (h as usize) % shards.max(1)
}

/// A sharded multi-tenant streaming scheduler service.
///
/// Tenant placement is `hash(tenant id) % shards` (Fibonacci hashing), so a
/// tenant's shard is a pure function of its id and the shard count — restores
/// and cross-topology comparisons place tenants identically.
pub struct Service {
    config: ServiceConfig,
    shards: Vec<Option<ShardHandle>>,
    /// Tenant directory: id → shard. Kept service-side so routing does not
    /// require asking workers.
    tenants: BTreeMap<TenantId, usize>,
}

impl Service {
    /// Starts `config.shards` empty shard workers.
    pub fn new(config: ServiceConfig) -> ServiceResult<Self> {
        let mut shards = Vec::with_capacity(config.shards.max(1));
        for i in 0..config.shards.max(1) {
            shards.push(Some(spawn_shard(i, config.queue_capacity, BTreeMap::new())?));
        }
        Ok(Service { config, shards, tenants: BTreeMap::new() })
    }

    /// The shard a tenant id maps to (see [`shard_for`]).
    pub fn shard_of(&self, id: TenantId) -> usize {
        shard_for(id, self.shards.len())
    }

    /// The service topology.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    fn handle(&self, shard: usize) -> ServiceResult<&ShardHandle> {
        self.shards
            .get(shard)
            .ok_or(ServiceError::UnknownShard(shard))?
            .as_ref()
            .ok_or(ServiceError::ShardDown(shard))
    }

    /// Registers a tenant on its home shard.
    pub fn add_tenant(&mut self, id: TenantId, spec: TenantSpec) -> ServiceResult<()> {
        if self.tenants.contains_key(&id) {
            return Err(ServiceError::DuplicateTenant(id));
        }
        let shard = self.shard_of(id);
        self.handle(shard)?.add_tenant(id, spec)?;
        self.tenants.insert(id, shard);
        Ok(())
    }

    /// Buffers arrivals for a tenant's next tick.
    pub fn submit(&self, id: TenantId, arrivals: Vec<(ColorId, u64)>) -> ServiceResult<()> {
        let &shard = self.tenants.get(&id).ok_or(ServiceError::UnknownTenant(id))?;
        self.handle(shard)?.send(Command::Submit { tenant: id, arrivals, seq: 0 })
    }

    /// Advances every tenant on every live shard one round.
    pub fn tick(&self) -> ServiceResult<()> {
        for shard in self.shards.iter().flatten() {
            shard.send(Command::Tick { seq: 0 })?;
        }
        Ok(())
    }

    /// Captures one shard's state.
    pub fn snapshot_shard(&self, shard: usize) -> ServiceResult<ShardSnapshot> {
        self.handle(shard)?.snapshot()
    }

    /// Captures the whole service.
    pub fn snapshot(&self) -> ServiceResult<ServiceSnapshot> {
        let mut shards = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            shards.push(self.snapshot_shard(i)?);
        }
        Ok(ServiceSnapshot { config: self.config, shards })
    }

    /// Kills a shard worker without draining it. In-queue commands are
    /// processed, then the thread exits and its tenants are discarded; use
    /// [`Service::restore_shard`] with an earlier snapshot to rebuild.
    pub fn kill_shard(&mut self, shard: usize) -> ServiceResult<()> {
        let slot = self
            .shards
            .get_mut(shard)
            .ok_or(ServiceError::UnknownShard(shard))?;
        match slot.take() {
            Some(h) => {
                h.kill();
                Ok(())
            }
            None => Err(ServiceError::ShardDown(shard)),
        }
    }

    /// Validates a snapshot's structure against this service's topology:
    /// shard index in range, tenants sorted and unique, every tenant routed
    /// to the snapshot's shard by [`shard_for`], jobs conserved, and every
    /// tenant registered in the service's directory.
    fn validate_snapshot(&self, snapshot: &ShardSnapshot) -> ServiceResult<()> {
        let shards = self.shards.len();
        snapshot.validate(shards, |id| shard_for(id, shards))?;
        for (id, _) in &snapshot.tenants {
            if self.tenants.get(id) != Some(&snapshot.shard) {
                return Err(ServiceError::UnknownTenant(*id));
            }
        }
        Ok(())
    }

    /// Rebuilds a killed shard from a snapshot: the snapshot is structurally
    /// validated against the topology and routing function, then every tenant
    /// is replayed from its log, verified against the recorded engine state,
    /// and handed to a fresh worker thread.
    pub fn restore_shard(&mut self, snapshot: ShardSnapshot) -> ServiceResult<()> {
        self.validate_snapshot(&snapshot)?;
        let shard = snapshot.shard;
        if self.shards[shard].is_some() {
            return Err(ServiceError::Divergence(format!(
                "shard {shard} is still running; kill it before restoring"
            )));
        }
        let tenants = restore_tenants(snapshot)?;
        self.shards[shard] = Some(spawn_shard(shard, self.config.queue_capacity, tenants)?);
        Ok(())
    }

    /// Rolls a **live** shard back to a snapshot in place: the worker thread
    /// and its counters survive, but its tenants are rebuilt from the
    /// snapshot (validation + replay, like [`Service::restore_shard`]).
    pub fn rollback_shard(&self, snapshot: ShardSnapshot) -> ServiceResult<()> {
        self.validate_snapshot(&snapshot)?;
        self.handle(snapshot.shard)?.restore(snapshot)
    }

    /// Collects service-wide counters (one snapshot + stats round-trip per
    /// live shard).
    pub fn stats(&self) -> ServiceResult<ServiceStats> {
        let mut shards = Vec::new();
        let mut tenants = Vec::new();
        for shard in self.shards.iter().flatten() {
            shards.push(shard.stats()?);
            for (id, t) in shard.snapshot()?.tenants {
                let r = &t.engine.result;
                tenants.push((
                    id,
                    crate::tenant::TenantProgress {
                        rounds: r.rounds,
                        arrived: t.arrived(),
                        executed: r.executed,
                        dropped: r.dropped_jobs,
                        pending: t.engine.pending.total(),
                        inbox: t.inbox.iter().map(|&(_, k)| k).sum(),
                        shed: t.shed,
                        cost: r.cost,
                        reconfig_events: r.reconfig_events,
                    },
                ));
            }
        }
        tenants.sort_by_key(|&(id, _)| id);
        // A bare service has no storage tier; report empty memory-tier stats.
        let storage = crate::storage::StorageStats {
            backend: "memory".into(),
            ..crate::storage::StorageStats::default()
        };
        Ok(ServiceStats { shards, tenants, storage })
    }

    /// Drains every tenant to its horizon, joins all workers, and returns the
    /// final per-tenant results in ascending tenant order.
    pub fn finish(self) -> ServiceResult<BTreeMap<TenantId, RunResult>> {
        let mut results = BTreeMap::new();
        for handle in self.shards.into_iter().flatten() {
            for (id, r) in handle.finish()? {
                results.insert(id, r);
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use rrs_core::ColorTable;

    fn spec() -> TenantSpec {
        TenantSpec::new(PolicySpec::DlruEdf, ColorTable::from_delay_bounds(&[2, 4]), 4, 2)
    }

    #[test]
    fn tenants_route_by_id_and_run_independently() {
        let mut svc = Service::new(ServiceConfig { shards: 2, queue_capacity: 8 }).unwrap();
        for id in 0..6 {
            svc.add_tenant(id, spec()).unwrap();
        }
        assert!(matches!(svc.add_tenant(3, spec()), Err(ServiceError::DuplicateTenant(3))));
        for round in 0..4u64 {
            for id in 0..6 {
                svc.submit(id, vec![(ColorId((id % 2) as u32), 1 + round % 2)]).unwrap();
            }
            svc.tick().unwrap();
        }
        let stats = svc.stats().unwrap();
        assert_eq!(stats.tenants.len(), 6);
        assert!(stats.conserves_jobs());
        let results = svc.finish().unwrap();
        assert_eq!(results.len(), 6);
        // All tenants saw the same per-parity workload, so results pair up.
        assert_eq!(results[&0], results[&2]);
        assert_eq!(results[&1], results[&3]);
    }

    #[test]
    fn kill_and_restore_shard_is_lossless() {
        let mut svc = Service::new(ServiceConfig { shards: 2, queue_capacity: 8 }).unwrap();
        for id in 0..4 {
            svc.add_tenant(id, spec()).unwrap();
        }
        for _ in 0..3 {
            for id in 0..4 {
                svc.submit(id, vec![(ColorId(0), 2)]).unwrap();
            }
            svc.tick().unwrap();
        }
        let victim = svc.shard_of(0);
        let snap = svc.snapshot_shard(victim).unwrap();
        assert!(snap.conserves_jobs());
        svc.kill_shard(victim).unwrap();
        assert!(matches!(svc.snapshot_shard(victim), Err(ServiceError::ShardDown(_))));
        svc.restore_shard(snap.clone()).unwrap();
        assert_eq!(svc.snapshot_shard(victim).unwrap(), snap);
        let results = svc.finish().unwrap();
        assert_eq!(results.len(), 4);
        let baseline = &results[&0];
        for id in 1..4 {
            assert_eq!(&results[&id], baseline, "tenant {id} diverged");
        }
    }

    #[test]
    fn rollback_rewinds_a_live_shard() {
        let mut svc = Service::new(ServiceConfig { shards: 1, queue_capacity: 8 }).unwrap();
        svc.add_tenant(0, spec()).unwrap();
        for _ in 0..3 {
            svc.submit(0, vec![(ColorId(0), 2)]).unwrap();
            svc.tick().unwrap();
        }
        let snap = svc.snapshot_shard(0).unwrap();
        // Diverge past the snapshot, then roll back in place.
        for _ in 0..4 {
            svc.submit(0, vec![(ColorId(1), 3)]).unwrap();
            svc.tick().unwrap();
        }
        assert_ne!(svc.snapshot_shard(0).unwrap(), snap);
        svc.rollback_shard(snap.clone()).unwrap();
        assert_eq!(svc.snapshot_shard(0).unwrap(), snap, "rollback is exact");
        let results = svc.finish().unwrap();
        assert_eq!(results[&0].executed + results[&0].dropped_jobs, 6);
    }

    #[test]
    fn restore_refuses_wrong_target() {
        let mut svc = Service::new(ServiceConfig { shards: 2, queue_capacity: 8 }).unwrap();
        svc.add_tenant(0, spec()).unwrap();
        let shard = svc.shard_of(0);
        let snap = svc.snapshot_shard(shard).unwrap();
        // Live shard: must kill first.
        assert!(svc.restore_shard(snap.clone()).is_err());
        svc.kill_shard(shard).unwrap();
        let mut bad = snap.clone();
        bad.shard = 99;
        assert!(matches!(svc.restore_shard(bad), Err(ServiceError::UnknownShard(99))));
        svc.restore_shard(snap).unwrap();
        svc.finish().unwrap();
    }
}
