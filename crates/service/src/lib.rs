//! # rrs-service — sharded multi-tenant streaming scheduler service
//!
//! Runs many independent [`rrs_core::StreamingEngine`] instances (one per
//! *tenant*) behind a sharded command-queue front end:
//!
//! * tenants are hash-partitioned across a fixed set of **shards**
//!   ([`Service::shard_of`]); each shard is one worker thread draining a
//!   bounded MPSC queue of [`Command`]s (`Submit`, `Tick`, `Snapshot`,
//!   `Stats`, `Restore`, `Finish`) with blocking backpressure when the
//!   queue fills;
//! * every tenant keeps its full **arrival log**, so a [`TenantSnapshot`] —
//!   spec + log + inbox + [`rrs_core::EngineSnapshot`] — is serializable and
//!   a killed shard can be rebuilt mid-run with **bit-identical**
//!   continuation ([`Service::kill_shard`] / [`Service::restore_shard`]):
//!   the log is replayed through a fresh engine and the result verified
//!   against the recorded state;
//! * per-shard and per-tenant counters (rounds, executed, dropped,
//!   reconfiguration cost, queue depth, backpressure waits, p50/p99 step
//!   latency) are exposed through [`Service::stats`] as a [`ServiceStats`].
//!
//! Because every [`PolicySpec`] policy is deterministic, a tenant's final
//! [`rrs_core::RunResult`] is independent of the shard count, of command
//! interleaving across tenants, and of any kill/restore cycles — the
//! conformance and fuzz tests in this crate check exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod policy;
pub mod service;
pub mod shard;
pub mod stats;
pub mod tenant;

pub use error::{ServiceError, ServiceResult};
pub use policy::PolicySpec;
pub use service::{Service, ServiceConfig, ServiceSnapshot};
pub use shard::{restore_tenants, spawn_shard, Command, ShardHandle, ShardSnapshot, TenantId};
pub use stats::{LatencyHistogramNs, ServiceStats, ShardStats};
pub use tenant::{Tenant, TenantProgress, TenantSnapshot, TenantSpec};
