//! # rrs-service — sharded multi-tenant streaming scheduler service
//!
//! Runs many independent [`rrs_core::StreamingEngine`] instances (one per
//! *tenant*) behind a sharded command-queue front end:
//!
//! * tenants are hash-partitioned across a fixed set of **shards**
//!   ([`Service::shard_of`]); each shard is one worker thread draining a
//!   bounded MPSC queue of [`Command`]s (`Submit`, `Tick`, `Snapshot`,
//!   `Stats`, `Restore`, `Finish`) with blocking backpressure when the
//!   queue fills;
//! * every tenant keeps its full **arrival log**, so a [`TenantSnapshot`] —
//!   spec + log + inbox + [`rrs_core::EngineSnapshot`] — is serializable and
//!   a killed shard can be rebuilt mid-run with **bit-identical**
//!   continuation ([`Service::kill_shard`] / [`Service::restore_shard`]):
//!   the log is replayed through a fresh engine and the result verified
//!   against the recorded state;
//! * a [`Supervisor`] adds **automatic fault tolerance** on top: it journals
//!   every state-changing command into a per-shard write-ahead log
//!   ([`Wal`]) before enqueueing, takes periodic validated [`Checkpoint`]s,
//!   detects dead or stalled workers (captured panics, join-handle
//!   monitoring, reply deadlines) and rebuilds them from checkpoint + WAL
//!   replay — bit-identical to an unfailed run; cross-shard commands retry
//!   with deadline-aware backoff ([`RetryPolicy`]) and overload **sheds**
//!   arrivals at configurable watermarks ([`ShedConfig`]) instead of
//!   blocking, counted per tenant as service-level drops;
//! * deterministic **fault injection** ([`FaultPlan`]) arms seeded panics,
//!   stalls, dropped replies and snapshot corruption at exact shard
//!   lifetimes, for chaos tests that stay reproducible;
//! * per-shard and per-tenant counters (rounds, executed, dropped, shed,
//!   recoveries, reconfiguration cost, queue depth, backpressure waits,
//!   p50/p99 step latency) are exposed through [`Service::stats`] /
//!   [`Supervisor::stats`] as a [`ServiceStats`].
//!
//! Because every [`PolicySpec`] policy is deterministic, a tenant's final
//! [`rrs_core::RunResult`] is independent of the shard count, of command
//! interleaving across tenants, and of any kill/restore or crash/recover
//! cycles — the conformance, fuzz and chaos tests in this crate check
//! exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod error;
pub mod faults;
pub mod net;
pub mod policy;
pub mod service;
pub mod shard;
pub mod stats;
pub mod storage;
pub mod supervisor;
pub mod tenant;
pub mod wal;

pub use error::{ServiceError, ServiceResult};
pub use faults::{Fault, FaultKind, FaultPlan, ShardFaults};
pub use net::{NetCounters, NetServer, NetSink, SinkConfig};
pub use policy::PolicySpec;
pub use service::{shard_for, Service, ServiceConfig, ServiceSnapshot};
pub use shard::{
    restore_tenants, spawn_shard, spawn_shard_with, Backoff, Command, ShardHandle,
    ShardSnapshot, TenantId, WorkerConfig,
};
pub use stats::{LatencyHistogramNs, ServiceStats, ShardStats};
pub use storage::{
    frame::Codec, CacheStats, DiskBackend, DiskConfig, FileCache, MemoryBackend,
    ShardStore, StorageBackend, StorageStats,
};
pub use supervisor::{
    BreakerConfig, IngestMode, RecoveryEvent, RetryPolicy, ShedConfig, Supervisor,
    SupervisorConfig,
};
pub use tenant::{Tenant, TenantProgress, TenantSnapshot, TenantSpec};
pub use wal::{replay, Checkpoint, Wal, WalRecord};
