//! Randomized service fuzzing.
//!
//! A deterministic per-tenant *script* (policy + per-round arrivals) is drawn
//! from a seed, then executed three ways: through the sharded service at 1, 2
//! and 8 shards, each with its own random interleaving of Submit commands,
//! random split submits, random snapshot probes and random shard
//! kill/restore cycles. Every tenant's final [`RunResult`] must be identical
//! across all shard counts and interleavings, and equal to the script run
//! through a bare [`Tenant`] with no service at all. Every snapshot taken
//! along the way must conserve jobs (arrived = executed + dropped + pending).
//!
//! The fixed-seed passes keep tier-1 deterministic; `fuzz_random_smoke` adds
//! a time-boxed random-seed pass when `RRS_FUZZ_MS` is set (used by CI's
//! smoke job).

use rrs_core::{ColorId, ColorTable, RunResult};
use rrs_service::{PolicySpec, Service, ServiceConfig, Tenant, TenantSpec};

const DELAY_BOUNDS: &[u64] = &[2, 4, 8];
const N: usize = 4;
const DELTA: u64 = 2;

/// SplitMix64: small, seedable, good enough for fuzz scripts.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// One tenant's deterministic workload: arrivals for each round.
struct Script {
    policy: PolicySpec,
    rounds: Vec<Vec<(ColorId, u64)>>,
}

fn draw_scripts(seed: u64, tenants: u64, rounds: usize) -> Vec<Script> {
    let mut rng = Rng(seed);
    (0..tenants)
        .map(|_| {
            let policy = PolicySpec::all()[rng.below(PolicySpec::all().len() as u64) as usize];
            let rounds = (0..rounds)
                .map(|_| {
                    let mut arrivals = Vec::new();
                    for c in 0..DELAY_BOUNDS.len() as u32 {
                        if rng.chance(40) {
                            arrivals.push((ColorId(c), 1 + rng.below(3)));
                        }
                    }
                    arrivals
                })
                .collect();
            Script { policy, rounds }
        })
        .collect()
}

fn tenant_spec(script: &Script) -> TenantSpec {
    TenantSpec::new(
        script.policy,
        ColorTable::from_delay_bounds(DELAY_BOUNDS),
        N,
        DELTA,
    )
}

/// The ground truth: each script through a bare tenant, no service.
fn reference_results(scripts: &[Script]) -> Vec<RunResult> {
    scripts
        .iter()
        .map(|s| {
            let mut t = Tenant::new(tenant_spec(s)).unwrap();
            for arrivals in &s.rounds {
                t.submit(arrivals).unwrap();
                t.tick().unwrap();
            }
            t.finish().unwrap()
        })
        .collect()
}

/// Runs the scripts through a sharded service with chaos drawn from
/// `interleave_seed`, returning final results in tenant order.
fn service_run(scripts: &[Script], shards: usize, interleave_seed: u64) -> Vec<RunResult> {
    let mut rng = Rng(interleave_seed);
    let mut svc = Service::new(ServiceConfig { shards, queue_capacity: 2 }).unwrap();
    for (id, s) in scripts.iter().enumerate() {
        svc.add_tenant(id as u64, tenant_spec(s)).unwrap();
    }
    let rounds = scripts.iter().map(|s| s.rounds.len()).max().unwrap_or(0);
    for round in 0..rounds {
        // Random submission order across tenants; arrivals randomly split
        // into two Submit commands (counts merge in the tenant inbox, so the
        // split must not be observable).
        let mut order: Vec<usize> = (0..scripts.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        for &t in &order {
            let arrivals = &scripts[t].rounds[round];
            if arrivals.is_empty() {
                continue;
            }
            if arrivals.len() > 1 && rng.chance(30) {
                let split = 1 + rng.below(arrivals.len() as u64 - 1) as usize;
                svc.submit(t as u64, arrivals[..split].to_vec()).unwrap();
                svc.submit(t as u64, arrivals[split..].to_vec()).unwrap();
            } else {
                svc.submit(t as u64, arrivals.clone()).unwrap();
            }
        }
        svc.tick().unwrap();
        if rng.chance(20) {
            let probe = rng.below(shards as u64) as usize;
            let snap = svc.snapshot_shard(probe).unwrap();
            assert!(
                snap.conserves_jobs(),
                "shard {probe} violates job conservation at round {round}"
            );
        }
        if rng.chance(15) {
            let victim = rng.below(shards as u64) as usize;
            let snap = svc.snapshot_shard(victim).unwrap();
            assert!(snap.conserves_jobs());
            if rng.chance(50) {
                // Hard failure: kill the worker, respawn from the snapshot.
                svc.kill_shard(victim).unwrap();
                svc.restore_shard(snap).unwrap();
            } else {
                // Soft rollback: the Restore command on the live worker.
                svc.rollback_shard(snap).unwrap();
            }
        }
    }
    let full = svc.snapshot().unwrap();
    assert!(full.conserves_jobs(), "conservation at final snapshot");
    let results = svc.finish().unwrap();
    (0..scripts.len() as u64).map(|t| results[&t].clone()).collect()
}

fn fuzz_one(seed: u64) {
    let scripts = draw_scripts(seed, 5, 20);
    let reference = reference_results(&scripts);
    for shards in [1usize, 2, 8] {
        let got = service_run(&scripts, shards, seed ^ (shards as u64) << 32);
        assert_eq!(
            got, reference,
            "seed {seed}: results depend on shard count {shards} or interleaving"
        );
    }
}

#[test]
fn fixed_seed_fuzz_is_shard_count_and_interleaving_invariant() {
    for seed in [11, 22, 33] {
        fuzz_one(seed);
    }
}

/// Time-boxed random-seed pass, enabled by `RRS_FUZZ_MS` (milliseconds).
/// Without the variable it runs a single extra seed, so tier-1 stays fast
/// and deterministic.
#[test]
fn fuzz_random_smoke() {
    let budget_ms: u64 = std::env::var("RRS_FUZZ_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if budget_ms == 0 {
        fuzz_one(0xC0FFEE);
        return;
    }
    let start = std::time::Instant::now();
    let mut seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1);
    let mut iterations = 0u64;
    while start.elapsed().as_millis() < budget_ms as u128 {
        // Print the seed first so a failure is reproducible from the log.
        println!("fuzz_random_smoke: seed {seed}");
        fuzz_one(seed);
        seed = Rng(seed).next();
        iterations += 1;
    }
    println!("fuzz_random_smoke: {iterations} iterations in {:?}", start.elapsed());
}
