//! Streaming ≡ batch conformance, for every streaming-capable policy.
//!
//! Feeding a random trace through a [`StreamingEngine`] round by round (and
//! through the service's [`Tenant`] wrapper, including a mid-run
//! snapshot → JSON → restore cycle) must produce a [`RunResult`] bit-identical
//! to replaying the same trace through the batch [`Engine`] — same cost, same
//! executed/dropped counts, same round count, same per-color breakdown. The
//! same must hold through the full sharded [`Service`] with a kill/restore in
//! the middle, at 1, 2 and 8 shards.

use rrs_core::{CostModel, Engine, EngineOptions, RunResult, StreamingEngine, Trace};
use rrs_service::{PolicySpec, Service, ServiceConfig, Tenant, TenantSpec};
use rrs_workloads::prelude::*;

const DELAY_BOUNDS: &[u64] = &[2, 4, 8, 16];
const N: usize = 4;
const DELTA: u64 = 2;

fn random_trace(seed: u64) -> Trace {
    WorkloadSpec::RandomBatched(RandomBatched {
        delay_bounds: DELAY_BOUNDS.to_vec(),
        load: 0.6,
        activity: 0.7,
        horizon: 48,
        rate_limited: false,
    })
    .generate(seed)
}

fn batch_reference(spec: PolicySpec, trace: &Trace) -> RunResult {
    let mut policy = spec
        .build(trace.colors(), N, DELTA)
        .expect("policy builds");
    Engine::with_options(EngineOptions { speed: spec.speed(), ..Default::default() })
        .run(trace, policy.as_mut(), N, CostModel::new(DELTA))
        .expect("batch run")
}

#[test]
fn every_policy_streams_identically_to_batch_replay() {
    for (i, &spec) in PolicySpec::all().iter().enumerate() {
        let trace = random_trace(1000 + i as u64);
        let batch = batch_reference(spec, &trace);

        let policy = spec.build(trace.colors(), N, DELTA).unwrap();
        let mut stream = StreamingEngine::with_speed(
            trace.colors().clone(),
            policy,
            N,
            CostModel::new(DELTA),
            spec.speed(),
        )
        .unwrap();
        for r in 0..=trace.horizon() {
            stream.step(&trace.arrivals_at(r)).unwrap();
        }
        let streamed = stream.finish().unwrap();
        assert_eq!(streamed, batch, "{}: streaming diverged from batch", spec.name());
    }
}

#[test]
fn every_policy_survives_mid_run_snapshot_restore() {
    for (i, &spec) in PolicySpec::all().iter().enumerate() {
        let trace = random_trace(2000 + i as u64);
        let batch = batch_reference(spec, &trace);
        let horizon = trace.horizon();
        // A policy-dependent pseudo-random cut strictly inside the run.
        let cut = 1 + (i as u64 * 7 + 3) % horizon;

        let tspec = TenantSpec::new(spec, trace.colors().clone(), N, DELTA);
        let mut live = Tenant::new(tspec).unwrap();
        for r in 0..cut {
            live.submit(&trace.arrivals_at(r)).unwrap();
            live.tick().unwrap();
        }

        // Snapshot → JSON → back, then restore (replays the arrival log
        // through a fresh policy and verifies the rebuilt engine state).
        let snap = live.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back, "{}: snapshot JSON round-trip", spec.name());
        let mut restored = Tenant::restore(back).unwrap();

        for r in cut..=horizon {
            let arrivals = trace.arrivals_at(r);
            live.submit(&arrivals).unwrap();
            live.tick().unwrap();
            restored.submit(&arrivals).unwrap();
            restored.tick().unwrap();
        }
        let live_result = live.finish().unwrap();
        let restored_result = restored.finish().unwrap();
        assert_eq!(
            restored_result, live_result,
            "{}: restored tenant diverged from uninterrupted run (cut at {cut})",
            spec.name()
        );
        assert_eq!(
            live_result, batch,
            "{}: streamed tenant diverged from batch replay",
            spec.name()
        );
    }
}

/// Drives `tenants` tenants through a service with `shards` shards, killing
/// and restoring one shard at `kill_round`, and returns the final per-tenant
/// results in tenant order.
fn service_run(
    load: &MultiTenantLoad,
    spec: PolicySpec,
    shards: usize,
    kill_round: u64,
) -> Vec<RunResult> {
    let driver = OpenLoopDriver::new(load);
    let mut svc = Service::new(ServiceConfig { shards, queue_capacity: 16 }).unwrap();
    for t in 0..driver.tenants() {
        let tspec = TenantSpec::new(spec, driver.trace(t).colors().clone(), N, DELTA);
        svc.add_tenant(t, tspec).unwrap();
    }
    for round in 0..=driver.horizon() {
        for t in 0..driver.tenants() {
            let arrivals = driver.arrivals(t, round);
            if !arrivals.is_empty() {
                svc.submit(t, arrivals).unwrap();
            }
        }
        svc.tick().unwrap();
        if round == kill_round {
            let victim = svc.shard_of(0);
            let snap = svc.snapshot_shard(victim).unwrap();
            assert!(snap.conserves_jobs(), "conservation before kill");
            svc.kill_shard(victim).unwrap();
            svc.restore_shard(snap).unwrap();
        }
    }
    let results = svc.finish().unwrap();
    (0..driver.tenants()).map(|t| results[&t].clone()).collect()
}

#[test]
fn kill_and_restore_conformance_across_1_2_8_shards() {
    let load = MultiTenantLoad::new(
        WorkloadSpec::RandomBatched(RandomBatched {
            delay_bounds: DELAY_BOUNDS.to_vec(),
            load: 0.5,
            activity: 0.8,
            horizon: 24,
            rate_limited: true,
        }),
        6,
        42,
    );
    let spec = PolicySpec::DlruEdf;

    // Per-tenant reference: the tenant's trace through a lone streaming
    // engine, no service, no sharding, no kill.
    let reference: Vec<RunResult> = (0..load.tenants)
        .map(|t| {
            let trace = load.trace_for(t);
            let policy = spec.build(trace.colors(), N, DELTA).unwrap();
            let mut eng = StreamingEngine::with_speed(
                trace.colors().clone(),
                policy,
                N,
                CostModel::new(DELTA),
                spec.speed(),
            )
            .unwrap();
            // The service ticks every tenant through the fleet-wide horizon.
            let fleet_horizon = OpenLoopDriver::new(&load).horizon();
            for r in 0..=fleet_horizon {
                eng.step(&trace.arrivals_at(r)).unwrap();
            }
            eng.finish().unwrap()
        })
        .collect();

    for shards in [1, 2, 8] {
        let got = service_run(&load, spec, shards, 9);
        assert_eq!(
            got, reference,
            "results changed under {shards} shards with mid-run kill/restore"
        );
    }
}
