//! Live-service ratio bounds on the scaled Appendix A/B adversaries.
//!
//! The targeted policy (ΔLRU on Appendix A, EDF on Appendix B) is run
//! through the supervised service — streaming ingestion, WAL, sharding —
//! and its end-to-end cost ratio against the appendix's explicit offline
//! schedule ([`DlruAdversary::offline_cost`] / [`EdfAdversary::offline_cost`])
//! must sit at or above the paper's lower bound
//! ([`paper_ratio_bound`](DlruAdversary::paper_ratio_bound)), within a small
//! tolerance, at several scaled sizes. On the same inputs ΔLRU-EDF must stay
//! cheap: each single-minded policy is beaten by the combined one on its own
//! adversary, which is the separation the scenario sweep later tags.

use rrs_core::RunResult;
use rrs_service::{
    FaultPlan, IngestMode, MemoryBackend, PolicySpec, Supervisor, SupervisorConfig, TenantSpec,
};
use rrs_workloads::prelude::*;

/// Runs one adversary spec through the live service under `policy`, single
/// tenant, and returns the final result.
fn live_run(spec: &WorkloadSpec, policy: PolicySpec, n: usize, delta: u64) -> RunResult {
    let src = spec.source(0).expect("adversary spec must validate");
    let config = SupervisorConfig {
        shards: 2,
        queue_capacity: 16,
        checkpoint_every: 8,
        ingest: IngestMode::Batched,
        ..Default::default()
    };
    let mut sup =
        Supervisor::with_storage(config, &FaultPlan::none(), Box::new(MemoryBackend::new()))
            .unwrap();
    sup.add_tenant(0, TenantSpec::new(policy, src.colors(), n, delta))
        .unwrap();
    for round in 0..=src.horizon() {
        let arrivals = src.arrivals_at(round);
        if !arrivals.is_empty() {
            sup.submit(0, arrivals).unwrap();
        }
        sup.tick().unwrap();
    }
    sup.finish().unwrap().remove(&0).unwrap()
}

#[test]
fn dlru_pays_the_appendix_a_bound_live() {
    let mut ratios = Vec::new();
    for size in 1..=3u32 {
        let adv = DlruAdversary::scaled(size);
        let spec = WorkloadSpec::DlruAdversary(adv);
        let dlru = live_run(&spec, PolicySpec::Dlru, adv.n, adv.delta);
        let combo = live_run(&spec, PolicySpec::DlruEdf, adv.n, adv.delta);
        let denom = adv.offline_cost() as f64;
        let r_dlru = dlru.cost.total() as f64 / denom;
        let r_combo = combo.cost.total() as f64 / denom;
        let bound = adv.paper_ratio_bound();
        println!(
            "dlru scaled({size}): n={} delta={} j={} k={} rounds={} \
             dlru_cost={} combo_cost={} offline={} r_dlru={r_dlru:.3} \
             r_combo={r_combo:.3} bound={bound:.3}",
            adv.n,
            adv.delta,
            adv.j,
            adv.k,
            1u64 << adv.k,
            dlru.cost.total(),
            combo.cost.total(),
            adv.offline_cost(),
        );
        ratios.push((size, r_dlru, r_combo, bound));
    }
    for &(size, r_dlru, r_combo, bound) in &ratios {
        assert!(
            r_dlru >= 0.9 * bound,
            "scaled({size}): live ΔLRU ratio {r_dlru:.3} fell below the paper bound {bound:.3}"
        );
        assert!(
            r_combo < r_dlru,
            "scaled({size}): ΔLRU-EDF ({r_combo:.3}) should beat ΔLRU ({r_dlru:.3}) \
             on ΔLRU's own adversary"
        );
    }
    assert!(
        ratios[2].1 > ratios[0].1,
        "ΔLRU's live ratio should grow along the scaled sweep"
    );
}

#[test]
fn edf_pays_the_appendix_b_bound_live() {
    let mut ratios = Vec::new();
    for size in 1..=3u32 {
        let adv = EdfAdversary::scaled(size);
        let spec = WorkloadSpec::EdfAdversary(adv);
        let edf = live_run(&spec, PolicySpec::Edf, adv.n, adv.delta);
        let combo = live_run(&spec, PolicySpec::DlruEdf, adv.n, adv.delta);
        let denom = adv.offline_cost() as f64;
        let r_edf = edf.cost.total() as f64 / denom;
        let r_combo = combo.cost.total() as f64 / denom;
        let bound = adv.paper_ratio_bound();
        println!(
            "edf scaled({size}): k={} rounds={} edf_cost={} combo_cost={} \
             offline={} r_edf={r_edf:.3} r_combo={r_combo:.3} bound={bound:.3}",
            adv.k,
            1u64 << (adv.k + adv.n as u32 / 2 - 1),
            edf.cost.total(),
            combo.cost.total(),
            adv.offline_cost(),
        );
        ratios.push((size, r_edf, r_combo, bound));
    }
    // The bound doubles per size step; live EDF must track it and ΔLRU-EDF
    // must not.
    for &(size, r_edf, r_combo, bound) in &ratios {
        assert!(
            r_edf >= 0.9 * bound,
            "scaled({size}): live EDF ratio {r_edf:.3} fell below the paper bound {bound:.3}"
        );
        assert!(
            r_combo < r_edf,
            "scaled({size}): ΔLRU-EDF ({r_combo:.3}) should beat EDF ({r_edf:.3}) \
             on EDF's own adversary"
        );
    }
    assert!(
        ratios[2].1 > ratios[0].1,
        "EDF's live ratio should grow along the scaled sweep"
    );
}
