//! Property tests for the durable storage tier.
//!
//! Two families:
//!
//! * **Round-trip** — random [`WalRecord`] sequences, framed and written
//!   through a real [`DiskBackend`] with aggressive segment rotation, must
//!   read back bit-identically after a cold reopen, for every grouping of
//!   appends into commits.
//! * **Crash surface** — the ISSUE's truncation sweep: chop the final
//!   segment at *every* byte offset and require recovery to yield exactly
//!   the longest record prefix whose frames survived, never an error and
//!   never a record the log did not durably hold. A sibling property flips
//!   a single random byte anywhere in a segment and requires the CRC to
//!   catch it.

use proptest::prelude::*;
use rrs_core::{ColorId, ColorTable};
use rrs_service::storage::frame::{self, FrameError};
use rrs_service::{
    DiskBackend, DiskConfig, PolicySpec, ShardFaults, ShardStore, StorageBackend, TenantSpec,
    WalRecord,
};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rrs-props-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small segments so even short record sequences rotate several times.
fn tiny_segment_config(root: &Path) -> DiskConfig {
    let mut cfg = DiskConfig::new(root);
    cfg.max_segment_bytes = 192;
    cfg.fsync = false; // no power-loss modeling here; keep the sweep fast
    cfg
}

fn record_strategy() -> impl Strategy<Value = WalRecord> {
    let arrivals = proptest::collection::vec((0u32..3, 1u64..9), 1..=3)
        .prop_map(|rows| rows.into_iter().map(|(c, n)| (ColorId(c), n)).collect::<Vec<_>>());
    prop_oneof![
        Just(WalRecord::Tick),
        (0u64..6, arrivals).prop_map(|(tenant, arrivals)| WalRecord::Submit { tenant, arrivals }),
        proptest::collection::vec((0u64..6, 0u32..3, 1u64..9), 1..=4).prop_map(|rows| {
            WalRecord::SubmitBatch {
                entries: rows
                    .into_iter()
                    .map(|(t, c, n)| (t, vec![(ColorId(c), n)]))
                    .collect(),
            }
        }),
        (0u64..6).prop_map(|id| WalRecord::AddTenant {
            id,
            spec: TenantSpec::new(
                PolicySpec::DlruEdf,
                ColorTable::from_delay_bounds(&[2, 4]),
                4,
                2,
            ),
        }),
    ]
}

fn open_store(backend: &mut DiskBackend) -> Box<dyn ShardStore> {
    backend.open_shard(0, ShardFaults::none()).unwrap()
}

/// Writes `records` through a fresh store, committing every `commit_every`
/// appends (and once at the end), and returns the directory.
fn write_log(dir: &Path, records: &[WalRecord], commit_every: usize) {
    let mut backend = DiskBackend::new(tiny_segment_config(dir));
    let mut store = open_store(&mut backend);
    for (i, record) in records.iter().enumerate() {
        store.append(record).unwrap();
        if (i + 1) % commit_every == 0 {
            store.commit().unwrap();
        }
    }
    store.commit().unwrap();
}

fn read_log(dir: &Path) -> Vec<WalRecord> {
    let mut backend = DiskBackend::new(tiny_segment_config(dir));
    let store = open_store(&mut backend);
    store.records_from(0)
}

/// Sorted `.seg` paths for shard 0, in offset order.
fn segments(dir: &Path) -> Vec<PathBuf> {
    let shard = dir.join("shard-000");
    let mut offsets: Vec<(u64, PathBuf)> = std::fs::read_dir(&shard)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter_map(|p| {
            let name = p.file_name()?.to_str()?.to_owned();
            let off = name.strip_prefix("wal-")?.strip_suffix(".seg")?.parse().ok()?;
            Some((off, p))
        })
        .collect();
    offsets.sort();
    offsets.into_iter().map(|(_, p)| p).collect()
}

/// Copies shard 0's directory into a scratch root.
fn clone_log(src: &Path, dst: &Path) {
    let to = dst.join("shard-000");
    std::fs::create_dir_all(&to).unwrap();
    for entry in std::fs::read_dir(src.join("shard-000")).unwrap() {
        let path = entry.unwrap().path();
        std::fs::copy(&path, to.join(path.file_name().unwrap())).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Frame layer: any record sequence encodes to a buffer that
    /// `scan_values` walks back verbatim, with no spurious tail error.
    #[test]
    fn frames_round_trip_in_memory(
        records in proptest::collection::vec(record_strategy(), 0..=24),
    ) {
        let mut buf = Vec::new();
        for record in &records {
            buf.extend_from_slice(&frame::encode_value(record).unwrap());
        }
        let (decoded, valid, err) = frame::scan_values::<WalRecord>(&buf);
        prop_assert_eq!(&decoded, &records);
        prop_assert_eq!(valid, buf.len());
        prop_assert!(err.is_none(), "clean buffer scanned with {err:?}");
    }

    /// Disk layer: whatever the commit grouping, a cold reopen returns the
    /// exact committed sequence (segment rotation included).
    #[test]
    fn segments_round_trip_through_reopen(
        records in proptest::collection::vec(record_strategy(), 1..=32),
        commit_every in 1usize..5,
    ) {
        let dir = temp_dir("roundtrip");
        write_log(&dir, &records, commit_every);
        prop_assert!(!segments(&dir).is_empty());
        prop_assert_eq!(read_log(&dir), records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A single flipped byte anywhere in any segment never survives
    /// recovery: the reopened log is a strict prefix of the original and
    /// the scan charges either the CRC or the torn-tail counter.
    #[test]
    fn any_single_byte_flip_is_detected(
        records in proptest::collection::vec(record_strategy(), 4..=24),
        flip in (0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let dir = temp_dir("bitflip");
        write_log(&dir, &records, 3);
        let segs = segments(&dir);
        let seg = &segs[(flip.0 % segs.len() as u64) as usize];
        let mut bytes = std::fs::read(seg).unwrap();
        prop_assert!(!bytes.is_empty());
        let at = (flip.1 % bytes.len() as u64) as usize;
        bytes[at] ^= 0xA5;
        std::fs::write(seg, &bytes).unwrap();

        let mut backend = DiskBackend::new(tiny_segment_config(&dir));
        let store = open_store(&mut backend);
        let recovered = store.records_from(0);
        prop_assert!(
            recovered.len() < records.len(),
            "a corrupted byte must cost at least its own record ({} vs {})",
            recovered.len(),
            records.len()
        );
        prop_assert_eq!(&recovered[..], &records[..recovered.len()]);
        let stats = backend.stats();
        prop_assert!(
            stats.corrupt_frames_dropped + stats.torn_tails_repaired >= 1,
            "recovery repaired silently: {}", stats
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The ISSUE's sweep, exhaustively: truncate the final segment at **every**
/// byte offset and require recovery to produce exactly the records whose
/// frames fit inside the kept prefix — never an error, never invented data.
#[test]
fn truncation_at_every_byte_of_the_final_segment_recovers_the_prefix() {
    let master = temp_dir("truncate-master");
    // A fixed, mixed workload long enough to span several tiny segments.
    let records: Vec<WalRecord> = (0..40)
        .map(|i| match i % 4 {
            0 => WalRecord::Submit { tenant: i % 5, arrivals: vec![(ColorId((i % 3) as u32), 1 + i % 4)] },
            1 => WalRecord::SubmitBatch {
                entries: vec![(i % 5, vec![(ColorId(0), 2)]), ((i + 1) % 5, vec![(ColorId(1), 3)])],
            },
            2 => WalRecord::Tick,
            _ => WalRecord::AddTenant {
                id: 100 + i,
                spec: TenantSpec::new(
                    PolicySpec::Dlru,
                    ColorTable::from_delay_bounds(&[2, 4]),
                    4,
                    2,
                ),
            },
        })
        .collect();
    write_log(&master, &records, 4);

    let segs = segments(&master);
    assert!(segs.len() >= 2, "workload must rotate segments, got {}", segs.len());
    let last = segs.last().unwrap().clone();
    let last_name = last.file_name().unwrap().to_owned();
    let last_bytes = std::fs::read(&last).unwrap();
    let first_kept: u64 = last_name
        .to_str()
        .unwrap()
        .strip_prefix("wal-")
        .unwrap()
        .strip_suffix(".seg")
        .unwrap()
        .parse()
        .unwrap();

    // How many whole frames fit in the first `len` bytes of the segment.
    let frames_within = |len: usize| -> u64 {
        let (vals, _, _) = frame::scan_values::<WalRecord>(&last_bytes[..len]);
        vals.len() as u64
    };

    let scratch = temp_dir("truncate-scratch");
    for len in 0..=last_bytes.len() {
        let _ = std::fs::remove_dir_all(&scratch);
        clone_log(&master, &scratch);
        let seg = scratch.join("shard-000").join(&last_name);
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len as u64).unwrap();
        drop(file);

        let expect_end = first_kept + frames_within(len);
        let mut backend = DiskBackend::new(tiny_segment_config(&scratch));
        let store = open_store(&mut backend);
        assert_eq!(
            store.end(),
            expect_end,
            "truncation at byte {len}/{} recovered the wrong prefix",
            last_bytes.len()
        );
        let recovered = store.records_from(0);
        assert_eq!(
            recovered[..],
            records[..expect_end as usize],
            "records diverge after truncation at byte {len}"
        );
        // A cut strictly inside a frame is a torn tail and must be counted.
        if frames_within(len) < frames_within(last_bytes.len())
            && len > 0
            && frames_within(len - 1) == frames_within(len)
        {
            assert!(
                backend.stats().torn_tails_repaired >= 1,
                "mid-frame cut at byte {len} not flagged as torn"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Torn-vs-corrupt classification stays sharp at the frame layer: every
/// proper prefix of a frame is `Torn`, never `Corrupt`.
#[test]
fn every_frame_prefix_is_torn_not_corrupt() {
    let frame = frame::encode_value(&WalRecord::Tick).unwrap();
    for len in 0..frame.len() {
        match frame::decode_frame(&frame[..len]) {
            Err(FrameError::Torn) => {}
            other => panic!("prefix {len}/{} classified {other:?}", frame.len()),
        }
    }
    assert!(frame::decode_frame(&frame).is_ok());
}
