//! Batched ≡ per-command ingestion conformance.
//!
//! [`IngestMode::Batched`] coalesces every submit bound for a shard within
//! one tick epoch into a single WAL group commit and a single
//! [`rrs_service::Command::SubmitBatch`], and fans ticks out to all shards
//! before joining on epoch acknowledgements. None of that may change *what*
//! the service computes: for every policy, the final per-tenant
//! [`RunResult`]s and the deterministic parts of [`rrs_service::ServiceStats`]
//! must be bit-identical to the per-command oracle — including when inbox
//! shedding strikes mid-batch, when workers are killed between group commits
//! (WAL replay must reproduce each batch's per-entry shedding decisions),
//! and when a worker applies a tick but never acknowledges its epoch
//! ([`FaultKind::DropAck`]).

use rrs_core::{ColorId, ColorTable, RunResult};
use rrs_service::{
    Fault, FaultKind, FaultPlan, IngestMode, PolicySpec, RetryPolicy, ServiceStats, ShedConfig,
    Supervisor, SupervisorConfig, TenantSpec,
};
use std::collections::BTreeMap;
use std::sync::Once;
use std::time::Duration;

const DELAY_BOUNDS: &[u64] = &[2, 4, 8];
const N: usize = 4;
const DELTA: u64 = 2;
const ROUNDS: u64 = 16;

/// Injected panics are part of the test; keep them off stderr while letting
/// unexpected panics through to the default hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload().downcast_ref::<&str>().map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn spec(policy: PolicySpec) -> TenantSpec {
    TenantSpec::new(policy, ColorTable::from_delay_bounds(DELAY_BOUNDS), N, DELTA)
}

/// One tenant per streaming-capable policy, so the conformance claim covers
/// every scheduler the service can host.
fn tenant_count() -> u64 {
    PolicySpec::all().len() as u64
}

fn policy_for(id: u64) -> PolicySpec {
    let all = PolicySpec::all();
    all[(id as usize) % all.len()]
}

/// Deterministic per-tenant arrivals: a function of `(tenant, round, part)`
/// only. `part` lets a round submit twice per tenant, so a batch carries the
/// same tenant more than once and mid-batch shedding is actually exercised.
fn arrivals(tenant: u64, round: u64, part: u64) -> Vec<(ColorId, u64)> {
    let mut out = Vec::new();
    for c in 0..DELAY_BOUNDS.len() as u64 {
        let mix = tenant
            .wrapping_mul(31)
            .wrapping_add(round.wrapping_mul(17))
            .wrapping_add(part.wrapping_mul(13))
            .wrapping_add(c.wrapping_mul(7));
        if mix % 3 != 0 {
            out.push((ColorId(c as u32), 1 + mix % 4));
        }
    }
    out
}

fn quick_config(shards: usize, ingest: IngestMode) -> SupervisorConfig {
    SupervisorConfig {
        shards,
        queue_capacity: 8,
        checkpoint_every: 5,
        retry: RetryPolicy {
            attempts: 4,
            op_timeout: Duration::from_millis(250),
            backoff: Duration::from_millis(2),
        },
        shed: ShedConfig::default(),
        ingest,
    }
}

/// Runs the standard two-submits-per-round workload; returns the final
/// results, the pre-finish stats and the recovery count.
fn run(config: SupervisorConfig, plan: &FaultPlan) -> (BTreeMap<u64, RunResult>, ServiceStats, u64) {
    quiet_injected_panics();
    let tenants = tenant_count();
    let mut sup = Supervisor::with_faults(config, plan).unwrap();
    for id in 0..tenants {
        sup.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    for round in 0..ROUNDS {
        for part in 0..2 {
            for id in 0..tenants {
                sup.submit(id, arrivals(id, round, part)).unwrap();
            }
        }
        sup.tick().unwrap();
    }
    let stats = sup.stats().unwrap();
    let recoveries = sup.recoveries();
    (sup.finish().unwrap(), stats, recoveries)
}

/// Asserts the deterministic slices of two stats reports agree. Excluded by
/// design: `commands` and `batches` (the transports differ on purpose),
/// queue depth, backpressure and latency (timing), faults/recoveries
/// (chaos-plan dependent). `worker_counters` additionally compares
/// `submits`/`ticks` — valid only between fault-free runs, because those are
/// worker-lifetime counters and reset when a recovery respawns the worker.
fn assert_stats_conform(batched: &ServiceStats, oracle: &ServiceStats, worker_counters: bool) {
    for (b, o) in batched.shards.iter().zip(oracle.shards.iter()) {
        assert_eq!(b.shard, o.shard);
        assert_eq!(b.tenants, o.tenants, "shard {}: tenant count", b.shard);
        if worker_counters {
            assert_eq!(b.submits, o.submits, "shard {}: per-entry submit count", b.shard);
            assert_eq!(b.ticks, o.ticks, "shard {}: ticks", b.shard);
        }
        assert_eq!(b.executed, o.executed, "shard {}: executed", b.shard);
        assert_eq!(b.dropped, o.dropped, "shard {}: dropped", b.shard);
        assert_eq!(b.shed_jobs, o.shed_jobs, "shard {}: shed", b.shard);
        assert_eq!(b.reconfig_cost, o.reconfig_cost, "shard {}: reconfig cost", b.shard);
    }
    assert_eq!(batched.tenants, oracle.tenants, "per-tenant progress");
    assert!(batched.conserves_jobs());
    assert!(oracle.conserves_jobs());
}

/// The core conformance claim, fault-free: batched and per-command ingestion
/// compute bit-identical results and stats for every policy, across shard
/// counts, and the batched transport actually coalesces (one batch per
/// non-empty epoch, not one command per submit).
#[test]
fn batched_matches_per_command_for_every_policy() {
    for shards in [1, 2, 4] {
        let (oracle_results, oracle_stats, _) =
            run(quick_config(shards, IngestMode::PerCommand), &FaultPlan::none());
        let (batched_results, batched_stats, _) =
            run(quick_config(shards, IngestMode::Batched), &FaultPlan::none());
        assert_eq!(batched_results, oracle_results, "{shards} shards: results diverged");
        assert_stats_conform(&batched_stats, &oracle_stats, true);
        for shard in &batched_stats.shards {
            assert!(
                shard.batches <= shard.ticks,
                "shard {}: at most one group commit per epoch ({} batches, {} ticks)",
                shard.shard,
                shard.batches,
                shard.ticks
            );
            assert!(shard.batches > 0, "shard {}: batching engaged", shard.shard);
        }
        for shard in &oracle_stats.shards {
            assert_eq!(shard.batches, 0, "per-command oracle never batches");
        }
    }
}

/// Kill every shard's worker once mid-run under batched ingestion: WAL
/// replay of `SubmitBatch` group commits must land on the same state as the
/// unfailed batched run *and* the per-command oracle.
#[test]
fn killed_workers_replay_group_commits_bit_identically() {
    let shards = 2;
    let plan = FaultPlan::kill_each_shard_once(shards, ROUNDS, 42);
    let (oracle_results, oracle_stats, _) =
        run(quick_config(shards, IngestMode::PerCommand), &FaultPlan::none());
    let (chaos_results, chaos_stats, recoveries) =
        run(quick_config(shards, IngestMode::Batched), &plan);
    assert!(recoveries >= shards as u64, "every injected kill recovered");
    assert_eq!(chaos_results, oracle_results, "recovery diverged from the oracle");
    assert_stats_conform(&chaos_stats, &oracle_stats, false);
}

/// Mid-batch inbox shedding: with a low watermark and two submits per tenant
/// per epoch, shedding decisions depend on the *order of entries within a
/// group commit*. They must agree with the per-command oracle, and survive a
/// worker kill (replay re-sheds identically), fault-free or not.
#[test]
fn mid_batch_shedding_matches_oracle_and_survives_kills() {
    let shed = ShedConfig { inbox_watermark: Some(3), queue_watermark: None };
    let shards = 2;
    let oracle_config = SupervisorConfig { shed, ..quick_config(shards, IngestMode::PerCommand) };
    let batched_config = SupervisorConfig { shed, ..quick_config(shards, IngestMode::Batched) };
    let (oracle_results, oracle_stats, _) = run(oracle_config, &FaultPlan::none());
    let (batched_results, batched_stats, _) = run(batched_config, &FaultPlan::none());
    assert!(oracle_stats.shed() > 0, "the watermark is low enough to bite");
    assert_eq!(batched_results, oracle_results, "mid-batch shedding diverged");
    assert_stats_conform(&batched_stats, &oracle_stats, true);

    let plan = FaultPlan::kill_each_shard_once(shards, ROUNDS, 7);
    let (chaos_results, chaos_stats, recoveries) = run(batched_config, &plan);
    assert!(recoveries >= shards as u64);
    assert_eq!(chaos_results, oracle_results, "replayed shedding diverged");
    assert_stats_conform(&chaos_stats, &oracle_stats, false);
}

/// A worker that applies its tick but never publishes the epoch ack
/// ([`FaultKind::DropAck`]) must be detected at the join phase and rebuilt —
/// and since the tick was journaled, the rebuild lands on identical state.
#[test]
fn dropped_epoch_ack_recovers_bit_identically() {
    let shards = 2;
    let plan = FaultPlan {
        faults: vec![Fault { shard: 0, at_tick: 6, kind: FaultKind::DropAck }],
    };
    let (clean_results, clean_stats, _) =
        run(quick_config(shards, IngestMode::Batched), &FaultPlan::none());
    quiet_injected_panics();
    let tenants = tenant_count();
    let mut sup = Supervisor::with_faults(quick_config(shards, IngestMode::Batched), &plan).unwrap();
    for id in 0..tenants {
        sup.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    for round in 0..ROUNDS {
        for part in 0..2 {
            for id in 0..tenants {
                sup.submit(id, arrivals(id, round, part)).unwrap();
            }
        }
        sup.tick().unwrap();
    }
    assert!(sup.recoveries() >= 1, "the silent ack drop was detected");
    assert!(
        sup.recovery_events().iter().any(|e| e.cause.contains("tick epoch was not acknowledged")),
        "recovery came from the join phase: {:?}",
        sup.recovery_events()
    );
    let stats = sup.stats().unwrap();
    assert_stats_conform(&stats, &clean_stats, false);
    assert_eq!(sup.finish().unwrap(), clean_results, "ack-drop recovery diverged");
}
