//! Crash-recovery suite for the disk storage tier: kill the whole process
//! (abort and SIGKILL, via a self-re-exec subprocess harness), cold-start
//! from the data directory, and assert the recovered service is
//! bit-identical to an in-memory oracle driven over the same committed
//! prefix — including under injected torn-write / partial-fsync /
//! corrupt-CRC storage faults.
//!
//! ## The prefix-consistency oracle
//!
//! Epoch commits are per shard, so a crash mid-broadcast can leave shard A
//! at epoch `T` and shard B at `T-1`; there is no cross-shard atomicity to
//! assert. What *is* guaranteed — and what these tests pin — is per-shard
//! prefix consistency: a shard recovered at `T_s` epochs must be
//! bit-identical to a [`MemoryBackend`] supervisor that ran the same
//! deterministic workload for exactly `T_s` uninterrupted epochs.
//!
//! ## The subprocess harness
//!
//! The kill tests re-exec this very test binary (`current_exe`), filtered
//! to [`child_workload_entrypoint`], with the data directory and crash mode
//! passed through the environment. Without those variables the entrypoint
//! is a no-op, so a normal `cargo test` run sails through it.

use rrs_core::{ColorId, ColorTable};
use rrs_service::{
    DiskBackend, DiskConfig, FaultPlan, IngestMode, MemoryBackend, PolicySpec, RetryPolicy,
    ShedConfig, Supervisor, SupervisorConfig, TenantSpec,
};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

const SHARDS: usize = 2;
const TENANTS: u64 = 4;

fn config() -> SupervisorConfig {
    SupervisorConfig {
        shards: SHARDS,
        queue_capacity: 64,
        checkpoint_every: 4,
        retry: RetryPolicy {
            attempts: 3,
            op_timeout: Duration::from_millis(1000),
            backoff: Duration::from_millis(1),
        },
        shed: ShedConfig::default(),
        ingest: IngestMode::Batched,
    }
}

/// Tenant specs cycle the policy catalog so recovery covers every engine.
fn spec_for(id: u64) -> TenantSpec {
    let policies = [PolicySpec::DlruEdf, PolicySpec::Dlru, PolicySpec::Edf];
    TenantSpec::new(
        policies[(id % 3) as usize],
        ColorTable::from_delay_bounds(&[2, 4]),
        4,
        2,
    )
}

/// The deterministic workload: a pure function of (tenant, round), so the
/// child process, the recovery run and the oracle all drive identical
/// traffic without sharing state.
fn arrivals(tenant: u64, round: u64) -> Vec<(ColorId, u64)> {
    vec![(ColorId(((tenant + round) % 2) as u32), 1 + (tenant * 7 + round * 3) % 4)]
}

fn register_all(sup: &mut Supervisor) {
    for id in 0..TENANTS {
        sup.add_tenant(id, spec_for(id)).unwrap();
    }
}

fn drive_epochs(sup: &mut Supervisor, from: u64, to: u64) {
    for round in from..to {
        for id in 0..TENANTS {
            sup.submit(id, arrivals(id, round)).unwrap();
        }
        sup.tick().unwrap();
    }
}

fn disk_supervisor(dir: &Path, plan: &FaultPlan) -> Supervisor {
    Supervisor::with_storage(config(), plan, Box::new(DiskBackend::new(DiskConfig::new(dir))))
        .unwrap()
}

fn memory_oracle(epochs: u64) -> Supervisor {
    let mut sup =
        Supervisor::with_storage(config(), &FaultPlan::none(), Box::new(MemoryBackend::new()))
            .unwrap();
    register_all(&mut sup);
    drive_epochs(&mut sup, 0, epochs);
    sup
}

/// Asserts every shard of `recovered` is bit-identical to a memory oracle
/// run for that shard's recovered epoch count. Returns the per-shard epoch
/// counts for further assertions.
fn assert_prefix_consistent(recovered: &mut Supervisor) -> Vec<u64> {
    let ticks: Vec<u64> =
        (0..SHARDS).map(|s| recovered.shard_ticks(s).unwrap()).collect();
    let mut distinct = ticks.clone();
    distinct.sort_unstable();
    distinct.dedup();
    for t in distinct {
        let mut oracle = memory_oracle(t);
        for (shard, &shard_ticks) in ticks.iter().enumerate() {
            if shard_ticks != t {
                continue;
            }
            let got = recovered.snapshot_shard(shard).unwrap();
            let want = oracle.snapshot_shard(shard).unwrap();
            assert_eq!(
                got, want,
                "shard {shard} at {t} epochs diverges from the uninterrupted oracle"
            );
        }
    }
    ticks
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rrs-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns this test binary re-filtered to the child entrypoint.
fn spawn_child(dir: &Path, mode: &str, epochs: u64) -> std::process::Child {
    Command::new(std::env::current_exe().unwrap())
        .args(["child_workload_entrypoint", "--exact", "--nocapture", "--test-threads=1"])
        .env("RRS_CRASH_DIR", dir)
        .env("RRS_CRASH_MODE", mode)
        .env("RRS_CRASH_EPOCHS", epochs.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child test process")
}

/// The subprocess body. A no-op unless `RRS_CRASH_DIR` is set (which only
/// the harness does), so this "test" passes vacuously in normal runs.
#[test]
fn child_workload_entrypoint() {
    let Ok(dir) = std::env::var("RRS_CRASH_DIR") else { return };
    let mode = std::env::var("RRS_CRASH_MODE").unwrap_or_default();
    let epochs: u64 = std::env::var("RRS_CRASH_EPOCHS")
        .ok()
        .and_then(|e| e.parse().ok())
        .unwrap_or(8);
    let mut sup = disk_supervisor(Path::new(&dir), &FaultPlan::none());
    register_all(&mut sup);
    match mode.as_str() {
        "abort" => {
            drive_epochs(&mut sup, 0, epochs);
            // Mid-epoch: the next round's submits are buffered (and, for
            // per-command durability semantics, journaled only at the next
            // tick's group commit) when the process dies.
            for id in 0..TENANTS {
                sup.submit(id, arrivals(id, epochs)).unwrap();
            }
            std::process::abort();
        }
        "spin" => {
            // Signal the parent once registration and a first epoch are
            // durable, so its kill cannot land before the workload exists;
            // then run far longer than the parent's kill delay. If the kill
            // is somehow late we just finish, and the parent tolerates that.
            drive_epochs(&mut sup, 0, 1);
            std::fs::write(Path::new(&dir).join("ready"), b"1").unwrap();
            drive_epochs(&mut sup, 1, epochs);
        }
        other => panic!("unknown crash mode {other:?}"),
    }
}

#[test]
fn aborted_process_cold_starts_bit_identically() {
    let dir = temp_dir("abort");
    const EPOCHS: u64 = 7;
    let status = spawn_child(&dir, "abort", EPOCHS).wait().unwrap();
    assert!(!status.success(), "the child must die by abort, got {status:?}");

    let mut recovered = disk_supervisor(&dir, &FaultPlan::none());
    let ticks = assert_prefix_consistent(&mut recovered);
    // The abort point is deterministic: every epoch's group commit landed,
    // the trailing submits did not.
    assert_eq!(ticks, vec![EPOCHS; SHARDS], "all epochs were committed");
    let events = recovered.recovery_events().to_vec();
    assert_eq!(events.len(), SHARDS, "one cold-start event per shard: {events:?}");

    // The resurrected service is live: drive it further and it matches an
    // uninterrupted run end to end (the lost mid-epoch submits are re-sent
    // here, exactly as a client retrying after a crash would).
    drive_epochs(&mut recovered, EPOCHS, EPOCHS + 5);
    let clean = memory_oracle(EPOCHS + 5);
    assert_eq!(recovered.finish().unwrap(), clean.finish().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_process_recovers_a_consistent_prefix() {
    let dir = temp_dir("sigkill");
    let mut child = spawn_child(&dir, "spin", 20_000);
    // Land the kill somewhere inside the run; the exact epoch (and even the
    // exact byte inside a group commit) is deliberately nondeterministic —
    // prefix consistency must hold wherever it strikes.
    let ready = dir.join("ready");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !ready.exists() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(ready.exists(), "child never reported ready");
    std::thread::sleep(Duration::from_millis(100));
    let _ = child.kill();
    let _ = child.wait();

    let mut recovered = disk_supervisor(&dir, &FaultPlan::none());
    let ticks = assert_prefix_consistent(&mut recovered);
    // Liveness after recovery, from the max epoch forward.
    let max = ticks.iter().copied().max().unwrap_or(0);
    drive_epochs(&mut recovered, max, max + 3);
    let stats = recovered.stats().unwrap();
    assert!(stats.conserves_jobs(), "job conservation after kill + recovery");
    recovered.finish().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_shutdown_resumes_exactly_where_it_stopped() {
    let dir = temp_dir("resume");
    const FIRST: u64 = 9;
    const MORE: u64 = 6;
    {
        let mut sup = disk_supervisor(&dir, &FaultPlan::none());
        register_all(&mut sup);
        drive_epochs(&mut sup, 0, FIRST);
        // Dropped without finish(): workers are torn down, disk remains.
    }
    let mut resumed = disk_supervisor(&dir, &FaultPlan::none());
    for shard in 0..SHARDS {
        assert_eq!(resumed.shard_ticks(shard).unwrap(), FIRST);
    }
    drive_epochs(&mut resumed, FIRST, FIRST + MORE);
    let clean = memory_oracle(FIRST + MORE);
    assert_eq!(
        resumed.finish().unwrap(),
        clean.finish().unwrap(),
        "a resumed run ends bit-identical to one that never stopped"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_fault_recovers_the_committed_prefix() {
    let dir = temp_dir("torn");
    const EPOCHS: u64 = 12;
    // Shard 0's 5th group commit tears mid-frame and the disk goes dark;
    // shard 1's 7th commit loses its data whole (fsync never happened).
    let plan = FaultPlan::parse("torn-write@5:0:13, partial-fsync@7:1", SHARDS, EPOCHS).unwrap();
    {
        let mut sup = disk_supervisor(&dir, &plan);
        register_all(&mut sup);
        drive_epochs(&mut sup, 0, EPOCHS);
        // The wedged stores never fail the live service.
        let stats = sup.stats().unwrap();
        assert_eq!(stats.storage.wedged, 2, "both storage faults fired");
        assert_eq!(stats.recoveries(), 0, "no worker ever died");
        sup.finish().unwrap();
    }
    let mut recovered = disk_supervisor(&dir, &FaultPlan::none());
    let ticks = assert_prefix_consistent(&mut recovered);
    for (shard, t) in ticks.iter().enumerate() {
        assert!(
            *t < EPOCHS,
            "shard {shard} lost its post-fault epochs (recovered {t} of {EPOCHS})"
        );
    }
    let storage = recovered.storage_stats();
    assert!(
        storage.torn_tails_repaired >= 1,
        "the torn tail was detected and repaired: {storage}"
    );
    recovered.finish().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_crc_fault_is_detected_and_replay_stops_at_the_rot() {
    let dir = temp_dir("crc");
    const EPOCHS: u64 = 10;
    let plan = FaultPlan::parse("corrupt-crc@6:0", SHARDS, EPOCHS).unwrap();
    {
        let mut sup = disk_supervisor(&dir, &plan);
        register_all(&mut sup);
        drive_epochs(&mut sup, 0, EPOCHS);
        sup.finish().unwrap();
    }
    let mut recovered = disk_supervisor(&dir, &FaultPlan::none());
    let storage = recovered.storage_stats();
    assert!(
        storage.corrupt_frames_dropped >= 1,
        "CRC caught the silent bit flip: {storage}"
    );
    let ticks = assert_prefix_consistent(&mut recovered);
    assert!(ticks[0] < EPOCHS, "shard 0 lost the rotted suffix");
    assert_eq!(ticks[1], EPOCHS, "shard 1 was untouched");
    recovered.finish().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_cold_start_replays_only_the_suffix() {
    // With checkpoint_every = 4 and 11 epochs, the newest checkpoint covers
    // epoch 8; recovery must replay only the 3-epoch suffix, not the world.
    let dir = temp_dir("suffix");
    {
        let mut sup = disk_supervisor(&dir, &FaultPlan::none());
        register_all(&mut sup);
        drive_epochs(&mut sup, 0, 11);
    }
    let mut recovered = disk_supervisor(&dir, &FaultPlan::none());
    for event in recovered.recovery_events().to_vec() {
        assert!(
            event.replayed <= 2 * 4 + 2,
            "replay bounded by the retained window, got {} records",
            event.replayed
        );
    }
    assert_prefix_consistent(&mut recovered);
    recovered.finish().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
