//! Streaming-source ≡ offline-oracle conformance through the live service.
//!
//! Every scenario generator — the Appendix A/B adversaries streaming in
//! closed form, the per-round-seeded stochastic generators, and a
//! trace-backed legacy generator — is driven through the supervised service
//! via [`StreamingDriver`] (arrivals queried round by round, never a
//! materialized trace), under both ingest modes and both storage backends.
//! The per-tenant [`RunResult`]s must be bit-identical to a lone
//! [`StreamingEngine`] fed from the *materialized offline oracle trace*
//! ([`StreamingDriver::oracle`]) over the same fleet horizon: the streamed
//! rounds and the offline trace are interchangeable all the way through WAL,
//! sharding, group commit and disk recovery.

use rrs_core::{CostModel, RunResult, StreamingEngine};
use rrs_service::{
    DiskBackend, DiskConfig, FaultPlan, IngestMode, MemoryBackend, PolicySpec, StorageBackend,
    Supervisor, SupervisorConfig, TenantSpec,
};
use rrs_workloads::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

const TENANTS: u64 = 3;
const N: usize = 4;
const DELTA: u64 = 2;

/// The scenario matrix's workload axis, sized for test runtime (horizons
/// ≤ 128 rounds).
fn workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::DlruAdversary(DlruAdversary::scaled(1)),
        WorkloadSpec::EdfAdversary(EdfAdversary::scaled(0)),
        WorkloadSpec::Drifting(DriftingDemand {
            period: 32,
            horizon: 64,
            ..DriftingDemand::default()
        }),
        WorkloadSpec::FlashCrowd(FlashCrowd {
            width: 16,
            horizon: 64,
            ..FlashCrowd::default()
        }),
        WorkloadSpec::Bursty(Bursty {
            delay_bounds: vec![2, 4, 8, 16],
            on_load: 0.7,
            p_on: 0.5,
            p_off: 0.4,
            horizon: 48,
            rate_limited: true,
        }),
    ]
}

/// Per-tenant reference: the tenant's *offline oracle trace* through a lone
/// streaming engine over the fleet horizon (the supervisor ticks every
/// tenant to the fleet-wide horizon, so the reference must too).
fn oracle_reference(driver: &StreamingDriver, policy: PolicySpec) -> Vec<RunResult> {
    (0..driver.tenants())
        .map(|t| {
            let trace = driver.oracle(t);
            let p = policy.build(trace.colors(), N, DELTA).unwrap();
            let mut eng = StreamingEngine::with_speed(
                trace.colors().clone(),
                p,
                N,
                CostModel::new(DELTA),
                policy.speed(),
            )
            .unwrap();
            for r in 0..=driver.horizon() {
                eng.step(&trace.arrivals_at(r)).unwrap();
            }
            eng.finish().unwrap()
        })
        .collect()
}

/// Drives the streaming sources through a supervised service and returns the
/// final per-tenant results.
fn service_run(
    driver: &StreamingDriver,
    policy: PolicySpec,
    shards: usize,
    ingest: IngestMode,
    backend: Box<dyn StorageBackend>,
) -> BTreeMap<u64, RunResult> {
    let config = SupervisorConfig {
        shards,
        queue_capacity: 16,
        checkpoint_every: 7,
        ingest,
        ..Default::default()
    };
    let mut sup = Supervisor::with_storage(config, &FaultPlan::none(), backend).unwrap();
    for t in 0..driver.tenants() {
        sup.add_tenant(t, TenantSpec::new(policy, driver.colors(t), N, DELTA))
            .unwrap();
    }
    for round in 0..=driver.horizon() {
        for t in 0..driver.tenants() {
            let arrivals = driver.arrivals(t, round);
            if !arrivals.is_empty() {
                sup.submit(t, arrivals).unwrap();
            }
        }
        sup.tick().unwrap();
    }
    sup.finish().unwrap()
}

fn check_all_workloads(ingest: IngestMode, disk: bool, tag: &str) {
    for (i, spec) in workloads().into_iter().enumerate() {
        let load = MultiTenantLoad::new(spec.clone(), TENANTS, 42);
        let driver = StreamingDriver::from_load(&load).unwrap();
        let policy = PolicySpec::DlruEdf;
        let reference = oracle_reference(&driver, policy);
        for shards in [1, 2] {
            let backend: Box<dyn StorageBackend> = if disk {
                let dir = scratch_dir(&format!("{tag}-{}-{shards}", spec.name()));
                Box::new(DiskBackend::new(DiskConfig::new(&dir)))
            } else {
                Box::new(MemoryBackend::new())
            };
            let results = service_run(&driver, policy, shards, ingest, backend);
            for t in 0..TENANTS {
                assert_eq!(
                    results[&t],
                    reference[t as usize],
                    "workload {} ({i}), tenant {t}, {shards} shards: live service \
                     diverged from the offline oracle",
                    spec.name()
                );
            }
            if disk {
                let _ = std::fs::remove_dir_all(scratch_dir(&format!(
                    "{tag}-{}-{shards}",
                    spec.name()
                )));
            }
        }
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rrs-scenario-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn streaming_sources_conform_per_command_memory() {
    check_all_workloads(IngestMode::PerCommand, false, "pc-mem");
}

#[test]
fn streaming_sources_conform_batched_memory() {
    check_all_workloads(IngestMode::Batched, false, "b-mem");
}

#[test]
fn streaming_sources_conform_batched_disk() {
    check_all_workloads(IngestMode::Batched, true, "b-disk");
}

/// The same conformance claim across the *policy* axis: every streamable
/// policy computes identical results from streamed rounds and from the
/// materialized oracle (memory backend, batched ingest, one workload —
/// the drifting generator, whose demand sweep exercises reconfiguration).
#[test]
fn every_policy_conforms_on_the_drifting_source() {
    let load = MultiTenantLoad::new(
        WorkloadSpec::Drifting(DriftingDemand {
            period: 32,
            horizon: 48,
            ..DriftingDemand::default()
        }),
        2,
        7,
    );
    let driver = StreamingDriver::from_load(&load).unwrap();
    for &policy in PolicySpec::all() {
        let reference = oracle_reference(&driver, policy);
        let results = service_run(
            &driver,
            policy,
            2,
            IngestMode::Batched,
            Box::new(MemoryBackend::new()),
        );
        for t in 0..2 {
            assert_eq!(
                results[&t],
                reference[t as usize],
                "policy {}: tenant {t} diverged",
                policy.name()
            );
        }
    }
}
