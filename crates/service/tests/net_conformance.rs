//! Loopback conformance: the network front-end adds transport, not
//! semantics.
//!
//! The same deterministic workload ([`SyntheticLoad`], the exact schedule
//! `batching.rs` uses) is driven twice — once through a [`NetSink`] against
//! an `rrs serve`-style [`NetServer`] over real loopback sockets, once
//! in-process under [`IngestMode::Batched`] — and the final per-tenant
//! [`RunResult`]s, per-shard [`rrs_service::ShardSnapshot`]s and the
//! deterministic slices of [`ServiceStats`] must be **bit-identical**.
//! That holds across memory and disk backends, with PackBits compression
//! on the wire, through a severed-and-replayed connection, with two
//! clients co-driving the tick barrier, and with every shard killed once
//! mid-run.

use rrs_core::{ColorTable, RunResult};
use rrs_service::{
    DiskBackend, DiskConfig, FaultPlan, IngestMode, NetServer, NetSink, PolicySpec, RetryPolicy,
    ServiceStats, ShardSnapshot, ShedConfig, SinkConfig, Supervisor, SupervisorConfig, TenantSpec,
};
use rrs_workloads::loadgen::{EpochSink, SyntheticLoad};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Once;
use std::time::Duration;

const DELAY_BOUNDS: &[u64] = &[2, 4, 8];
const N: usize = 4;
const DELTA: u64 = 2;
const ROUNDS: u64 = 16;

fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload().downcast_ref::<&str>().map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn spec(policy: PolicySpec) -> TenantSpec {
    TenantSpec::new(policy, ColorTable::from_delay_bounds(DELAY_BOUNDS), N, DELTA)
}

fn policy_for(id: u64) -> PolicySpec {
    let all = PolicySpec::all();
    all[(id as usize) % all.len()]
}

/// One tenant per policy, the standard 31/17/13/7 mix, two submit parts
/// per round — byte-for-byte the `batching.rs` workload.
fn load() -> SyntheticLoad {
    SyntheticLoad {
        tenants: PolicySpec::all().len() as u64,
        rounds: ROUNDS,
        parts: 2,
        colors: DELAY_BOUNDS.len() as u64,
    }
}

fn quick_config(shards: usize) -> SupervisorConfig {
    SupervisorConfig {
        shards,
        queue_capacity: 8,
        checkpoint_every: 5,
        retry: RetryPolicy {
            attempts: 4,
            op_timeout: Duration::from_millis(250),
            backoff: Duration::from_millis(2),
        },
        shed: ShedConfig::default(),
        ingest: IngestMode::Batched,
    }
}

/// A generous sink policy: loopback reconnects are instant, but a tick
/// that lands while a killed shard is being rebuilt can take a while.
fn sink_config() -> SinkConfig {
    SinkConfig {
        retry: RetryPolicy {
            attempts: 5,
            op_timeout: Duration::from_secs(10),
            backoff: Duration::from_millis(2),
        },
        seed: 7,
        compress: false,
        parties: 1,
        max_inflight: 4,
        ..SinkConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rrs-netconf-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything a run produces that determinism can be asserted over.
struct RunArtifacts {
    results: BTreeMap<u64, RunResult>,
    stats: ServiceStats,
    snapshots: Vec<ShardSnapshot>,
}

/// The in-process oracle: same workload, same batched ingestion, no
/// sockets. Artifacts are read in the same order the network run reads
/// them (snapshots, stats, finish).
fn inproc_run(config: SupervisorConfig, backend: Option<Box<DiskBackend>>) -> RunArtifacts {
    quiet_injected_panics();
    let shards = config.shards;
    let mut sup = match backend {
        Some(backend) => {
            Supervisor::with_storage(config, &FaultPlan::none(), backend).unwrap()
        }
        None => Supervisor::new(config).unwrap(),
    };
    for id in 0..load().tenants {
        sup.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    let workload = load();
    for round in 0..workload.rounds {
        for part in 0..workload.parts {
            for id in 0..workload.tenants {
                let arrivals = workload.arrivals(id, round, part);
                if arrivals.is_empty() {
                    continue;
                }
                sup.submit(id, arrivals).unwrap();
            }
        }
        sup.tick().unwrap();
    }
    let snapshots = (0..shards).map(|s| sup.snapshot_shard(s).unwrap()).collect();
    let stats = sup.stats().unwrap();
    RunArtifacts { results: sup.finish().unwrap(), stats, snapshots }
}

/// Adapter implementing the workload driver's sink trait over the network
/// client (orphan rules keep the impl out of the library crates).
struct WireSink<'a>(&'a mut NetSink);

impl EpochSink for WireSink<'_> {
    type Error = rrs_service::ServiceError;

    fn submit(
        &mut self,
        tenant: u64,
        arrivals: Vec<(rrs_core::ColorId, u64)>,
    ) -> Result<(), Self::Error> {
        self.0.submit(tenant, arrivals);
        Ok(())
    }

    fn tick(&mut self) -> Result<(), Self::Error> {
        self.0.tick()
    }
}

/// Drives the workload through a real TCP server. `sever_every` severs the
/// client's connection after every n-th tick, exercising reconnect +
/// replay mid-pipeline.
fn net_run(
    config: SupervisorConfig,
    plan: &FaultPlan,
    backend: Option<Box<DiskBackend>>,
    sink_cfg: SinkConfig,
    sever_every: Option<u64>,
) -> (RunArtifacts, rrs_service::NetCounters) {
    quiet_injected_panics();
    let shards = config.shards;
    let sup = match backend {
        Some(backend) => Supervisor::with_storage(config, plan, backend).unwrap(),
        None => Supervisor::with_faults(config, plan).unwrap(),
    };
    let mut server = NetServer::start(sup, "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    let mut sink = NetSink::connect(&addr, 1, sink_cfg).unwrap();
    assert_eq!(sink.shards(), shards, "hello reports the shard count");
    for id in 0..load().tenants {
        sink.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    let workload = load();
    for round in 0..workload.rounds {
        workload.drive_round(&mut WireSink(&mut sink), round, |_| true).unwrap();
        sink.tick().unwrap();
        if let Some(every) = sever_every {
            if (round + 1) % every == 0 {
                sink.sever_connection();
            }
        }
    }
    sink.flush().unwrap();
    assert_eq!(
        sink.last_seqs().len(),
        shards,
        "tick acks carry one durable seq per shard"
    );
    assert!(
        sink.last_seqs().iter().all(|&s| s > 0),
        "acked seqs are WAL offsets + 1: {:?}",
        sink.last_seqs()
    );
    let snapshots = (0..shards).map(|s| sink.snapshot_shard(s).unwrap()).collect();
    let stats = sink.stats().unwrap();
    let counters = sink.counters();
    let results = sink.finish().unwrap();
    server.shutdown();
    (RunArtifacts { results, stats, snapshots }, counters)
}

/// Deterministic-slice stats comparison, mirroring `batching.rs`:
/// timing, queue-depth, fault and transport-shape counters excluded;
/// `worker_counters` adds `submits`/`ticks` (fault-free runs only).
fn assert_stats_conform(net: &ServiceStats, oracle: &ServiceStats, worker_counters: bool) {
    for (n, o) in net.shards.iter().zip(oracle.shards.iter()) {
        assert_eq!(n.shard, o.shard);
        assert_eq!(n.tenants, o.tenants, "shard {}: tenant count", n.shard);
        if worker_counters {
            assert_eq!(n.submits, o.submits, "shard {}: per-entry submit count", n.shard);
            assert_eq!(n.ticks, o.ticks, "shard {}: ticks", n.shard);
        }
        assert_eq!(n.executed, o.executed, "shard {}: executed", n.shard);
        assert_eq!(n.dropped, o.dropped, "shard {}: dropped", n.shard);
        assert_eq!(n.shed_jobs, o.shed_jobs, "shard {}: shed", n.shard);
        assert_eq!(n.reconfig_cost, o.reconfig_cost, "shard {}: reconfig cost", n.shard);
    }
    assert_eq!(net.tenants, oracle.tenants, "per-tenant progress");
    assert!(net.conserves_jobs());
    assert!(oracle.conserves_jobs());
}

fn assert_identical(net: &RunArtifacts, oracle: &RunArtifacts, worker_counters: bool) {
    assert_eq!(net.results, oracle.results, "final results diverged");
    assert_eq!(net.snapshots, oracle.snapshots, "shard snapshots diverged");
    assert_stats_conform(&net.stats, &oracle.stats, worker_counters);
}

/// The core claim, memory-backed, across shard counts.
#[test]
fn net_run_matches_inproc_batched_oracle() {
    for shards in [1, 2, 4] {
        let oracle = inproc_run(quick_config(shards), None);
        let (net, counters) =
            net_run(quick_config(shards), &FaultPlan::none(), None, sink_config(), None);
        assert_identical(&net, &oracle, true);
        assert_eq!(counters.epochs_acked, ROUNDS, "{shards} shards: every epoch acked");
        assert_eq!(counters.reconnects, 0, "{shards} shards: clean run");
        assert_eq!(
            counters.jobs_submitted,
            load().total_jobs(|_| true),
            "{shards} shards: jobs on the wire"
        );
    }
}

/// Same claim with both runs on the durable disk tier.
#[test]
fn net_run_matches_inproc_on_disk() {
    let net_dir = temp_dir("net");
    let oracle_dir = temp_dir("oracle");
    let oracle = inproc_run(
        quick_config(2),
        Some(Box::new(DiskBackend::new(DiskConfig::new(&oracle_dir)))),
    );
    let (net, _) = net_run(
        quick_config(2),
        &FaultPlan::none(),
        Some(Box::new(DiskBackend::new(DiskConfig::new(&net_dir)))),
        sink_config(),
        None,
    );
    assert_identical(&net, &oracle, true);
    // Same batched transport server-side: the WALs saw the same commits.
    assert_eq!(
        net.stats.storage.commits, oracle.stats.storage.commits,
        "group-commit counts diverged"
    );
    assert_eq!(
        net.stats.storage.bytes_written, oracle.stats.storage.bytes_written,
        "journaled byte counts diverged"
    );
    let _ = std::fs::remove_dir_all(&net_dir);
    let _ = std::fs::remove_dir_all(&oracle_dir);
}

/// PackBits on the wire changes bytes, not results. The encoder only sets
/// the flag when compression actually shrinks a message (run-poor JSON
/// payloads ride uncompressed), so the compressed stream is never larger;
/// `net_wire.rs` proves run-heavy payloads do shrink.
#[test]
fn compressed_wire_is_bit_identical_and_smaller() {
    let oracle = inproc_run(quick_config(2), None);
    let plain_cfg = sink_config();
    let compressed_cfg = SinkConfig { compress: true, ..sink_config() };
    let (plain, plain_counters) =
        net_run(quick_config(2), &FaultPlan::none(), None, plain_cfg, None);
    let (compressed, compressed_counters) =
        net_run(quick_config(2), &FaultPlan::none(), None, compressed_cfg, None);
    assert_identical(&plain, &oracle, true);
    assert_identical(&compressed, &oracle, true);
    assert!(
        compressed_counters.bytes_sent <= plain_counters.bytes_sent,
        "shrink-only compression never inflates the stream: {} vs {}",
        compressed_counters.bytes_sent,
        plain_counters.bytes_sent
    );
}

/// Sever the TCP connection under the client repeatedly mid-run: the sink
/// reconnects through the seeded backoff schedule, replays unacked
/// epochs, the server dedups — and nothing diverges.
#[test]
fn reconnect_replay_is_exactly_once() {
    let oracle = inproc_run(quick_config(2), None);
    let (net, counters) =
        net_run(quick_config(2), &FaultPlan::none(), None, sink_config(), Some(5));
    assert_identical(&net, &oracle, true);
    assert!(
        counters.reconnects >= 1,
        "severing the socket forced at least one reconnect"
    );
}

/// Kill every shard's worker once mid-run behind the server: recovery
/// rebuilds from checkpoint + WAL while acked batches stay exactly-once.
/// Worker-lifetime counters reset on respawn, so only the durable slices
/// are compared (as in `batching.rs`).
#[test]
fn net_run_survives_mid_run_shard_kill() {
    let shards = 2;
    let oracle = inproc_run(quick_config(shards), None);
    let plan = FaultPlan::kill_each_shard_once(shards, ROUNDS, 42);
    let (net, _) = net_run(quick_config(shards), &plan, None, sink_config(), None);
    assert_eq!(net.results, oracle.results, "results diverged across kills");
    assert_eq!(net.snapshots, oracle.snapshots, "snapshots diverged across kills");
    assert_stats_conform(&net.stats, &oracle.stats, false);
    assert!(
        net.stats.recoveries() >= shards as u64,
        "every shard was killed and recovered once"
    );
}

/// Two clients co-drive one run over the tick barrier, each owning half
/// the tenants. Inbox merging is additive, so the interleaving across
/// sockets cannot affect the outcome: results, snapshots and stats match
/// the single-process oracle bit-for-bit.
#[test]
fn two_clients_share_the_tick_barrier() {
    let shards = 2;
    let oracle = inproc_run(quick_config(shards), None);

    let sup = Supervisor::new(quick_config(shards)).unwrap();
    let mut server = NetServer::start(sup, "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    // Client 1 registers all tenants before anyone drives.
    let cfg = SinkConfig { parties: 2, ..sink_config() };
    let mut setup = NetSink::connect(&addr, 1, cfg.clone()).unwrap();
    for id in 0..load().tenants {
        setup.add_tenant(id, spec(policy_for(id))).unwrap();
    }

    let drive = |client: u64, mut sink: NetSink| {
        std::thread::spawn(move || {
            let workload = load();
            for round in 0..workload.rounds {
                workload
                    .drive_round(&mut WireSink(&mut sink), round, |t| t % 2 == client % 2)
                    .unwrap();
                sink.tick().unwrap();
            }
            sink.flush().unwrap();
            sink
        })
    };
    let h1 = drive(1, setup);
    let h2 = drive(2, NetSink::connect(&addr, 2, cfg).unwrap());
    let mut sink = h1.join().unwrap();
    let _ = h2.join().unwrap();

    let snapshots: Vec<ShardSnapshot> =
        (0..shards).map(|s| sink.snapshot_shard(s).unwrap()).collect();
    let stats = sink.stats().unwrap();
    let results = sink.finish().unwrap();
    server.shutdown();

    assert_eq!(results, oracle.results, "two-client results diverged");
    assert_eq!(snapshots, oracle.snapshots, "two-client snapshots diverged");
    assert_stats_conform(&stats, &oracle.stats, true);
}

/// The server's `wait_finished` hands the driving thread the same results
/// the finishing client received.
#[test]
fn server_wait_finished_sees_the_results() {
    let sup = Supervisor::new(quick_config(1)).unwrap();
    let mut server = NetServer::start(sup, "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let mut sink = NetSink::connect(&addr, 1, sink_config()).unwrap();
    sink.add_tenant(0, spec(policy_for(0))).unwrap();
    sink.submit(0, load().arrivals(0, 0, 0));
    sink.tick().unwrap();
    let results = sink.finish().unwrap();
    let server_view: BTreeMap<u64, RunResult> =
        server.wait_finished().unwrap().into_iter().collect();
    assert_eq!(server_view, results);
    server.shutdown();
}
