//! Cross-codec compatibility: a data directory is never married to one
//! codec. Reading always sniffs the format per frame, so a JSON-era
//! directory resumes under a binary-default build (the upgrade path), a
//! binary directory resumes under `--codec json` (the rollback path), and
//! a WAL whose segments mix both formats mid-stream recovers
//! bit-identically to an uninterrupted run.
//!
//! The oracle is the same one every storage suite uses: a
//! [`MemoryBackend`] supervisor driven over the identical deterministic
//! workload. Whatever codecs the disk runs used, final results and shard
//! snapshots must match it exactly — and each other.

use rrs_core::{ColorId, ColorTable, RunResult};
use rrs_service::storage::frame::Codec;
use rrs_service::{
    DiskBackend, DiskConfig, FaultPlan, MemoryBackend, PolicySpec, Supervisor, SupervisorConfig,
    TenantSpec,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const SHARDS: usize = 2;
const TENANTS: u64 = 4;
const EPOCHS_A: u64 = 9;
const EPOCHS_B: u64 = 17;

fn config() -> SupervisorConfig {
    SupervisorConfig {
        shards: SHARDS,
        checkpoint_every: 4,
        ..SupervisorConfig::default()
    }
}

fn spec_for(id: u64) -> TenantSpec {
    let policies = [PolicySpec::DlruEdf, PolicySpec::Dlru, PolicySpec::Edf];
    TenantSpec::new(
        policies[(id % 3) as usize],
        ColorTable::from_delay_bounds(&[2, 4]),
        4,
        2,
    )
}

fn arrivals(tenant: u64, round: u64) -> Vec<(ColorId, u64)> {
    vec![(ColorId(((tenant + round) % 2) as u32), 1 + (tenant * 7 + round * 3) % 4)]
}

fn disk_supervisor(dir: &Path, codec: Codec) -> Supervisor {
    let mut cfg = DiskConfig::new(dir);
    cfg.codec = codec;
    Supervisor::with_storage(config(), &FaultPlan::none(), Box::new(DiskBackend::new(cfg)))
        .unwrap()
}

fn register_all(sup: &mut Supervisor) {
    for id in 0..TENANTS {
        sup.add_tenant(id, spec_for(id)).unwrap();
    }
}

fn drive_epochs(sup: &mut Supervisor, from: u64, to: u64) {
    for round in from..to {
        for id in 0..TENANTS {
            sup.submit(id, arrivals(id, round)).unwrap();
        }
        sup.tick().unwrap();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rrs-codec-compat-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the workload for `EPOCHS_A` epochs under `first`, cleanly shuts
/// down, resumes the same directory under `second` for the remaining
/// epochs, and returns the final results plus the resumed supervisor's
/// per-shard snapshots.
fn split_codec_run(tag: &str, first: Codec, second: Codec) -> BTreeMap<u64, RunResult> {
    let dir = temp_dir(tag);

    let mut sup = disk_supervisor(&dir, first);
    register_all(&mut sup);
    drive_epochs(&mut sup, 0, EPOCHS_A);
    // Drop without finish(): a clean shutdown mid-run, exactly the state
    // an operator upgrades (or rolls back) a binary in.
    drop(sup);

    let mut resumed = disk_supervisor(&dir, second);
    for shard in 0..SHARDS {
        assert_eq!(
            resumed.shard_ticks(shard).unwrap(),
            EPOCHS_A,
            "shard {shard} lost epochs across the {first}→{second} restart"
        );
    }
    drive_epochs(&mut resumed, EPOCHS_A, EPOCHS_B);
    let results = resumed.finish().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    results
}

fn memory_oracle_results() -> BTreeMap<u64, RunResult> {
    let mut sup =
        Supervisor::with_storage(config(), &FaultPlan::none(), Box::new(MemoryBackend::new()))
            .unwrap();
    register_all(&mut sup);
    drive_epochs(&mut sup, 0, EPOCHS_B);
    sup.finish().unwrap()
}

/// The upgrade path: a JSON-era data directory resumed by a binary-default
/// build, and the rollback path: a binary directory resumed under the JSON
/// oracle codec. Both must equal the uninterrupted in-memory run — and by
/// transitivity, each other.
#[test]
fn mixed_codec_directories_recover_bit_identically() {
    let oracle = memory_oracle_results();
    let upgraded = split_codec_run("upgrade", Codec::Json, Codec::Binary);
    assert_eq!(upgraded, oracle, "JSON→binary resume diverged from the oracle");
    let rolled_back = split_codec_run("rollback", Codec::Binary, Codec::Json);
    assert_eq!(rolled_back, oracle, "binary→JSON resume diverged from the oracle");
}

/// `--codec json` is the conformance oracle: a pure-JSON disk run and a
/// pure-binary disk run must produce identical results, snapshots and
/// epoch counts — the codec changes bytes, never semantics. Also pins the
/// size win: the binary directory writes fewer payload bytes.
#[test]
fn json_and_binary_runs_are_result_identical_and_binary_is_smaller() {
    let mut per_codec: Vec<(BTreeMap<u64, RunResult>, Vec<_>, u64)> = Vec::new();
    for codec in [Codec::Json, Codec::Binary] {
        let dir = temp_dir(codec.name());
        let mut sup = disk_supervisor(&dir, codec);
        register_all(&mut sup);
        drive_epochs(&mut sup, 0, EPOCHS_B);
        let stats = sup.stats().unwrap();
        let snapshots: Vec<_> = (0..SHARDS).map(|s| sup.snapshot_shard(s).unwrap()).collect();
        let results = sup.finish().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        per_codec.push((results, snapshots, stats.storage.payload_bytes));
    }
    let (json_results, json_snaps, json_payload) = &per_codec[0];
    let (bin_results, bin_snaps, bin_payload) = &per_codec[1];
    assert_eq!(bin_results, json_results, "codecs disagree on final results");
    assert_eq!(bin_snaps, json_snaps, "codecs disagree on shard snapshots");
    assert!(
        bin_payload < json_payload,
        "binary payload {bin_payload} >= json payload {json_payload}"
    );
}
