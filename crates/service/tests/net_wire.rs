//! Wire-codec properties: the socket framing gets the same adversarial
//! treatment `storage_properties.rs` gives the WAL.
//!
//! * **Round-trip** — random `Request`/`Response` messages survive
//!   encode → decode bit-identically, compressed and not.
//! * **Corruption** — flipping any single byte of a frame must never
//!   yield a different message: the CRC (or the flags/decompression
//!   checks behind it) rejects it.
//! * **Truncation** — chopping a frame at every byte offset reads as
//!   *torn* (keep reading), never as a bogus message; the streaming
//!   reader reassembles frames delivered one byte at a time.
//! * **PackBits** — round-trips arbitrary bytes (runs past the 128
//!   control-byte limit included), actually shrinks run-heavy input, and
//!   rejects truncated streams.
//! * **Reconnect schedule** — the client's redial backoff is the shard
//!   layer's seeded-jittered schedule: bounded, deterministic per seed,
//!   distinct across seeds (satellite of the `rrs serve` ISSUE).

use proptest::prelude::*;
use rrs_core::ColorId;
use rrs_service::net::wire::{
    self, decode_message, decode_message_full, encode_message, encode_message_with,
    packbits_compress, packbits_decompress, MsgStream, Request, Response,
};
use rrs_service::storage::frame::{Codec, FrameError};
use rrs_service::RetryPolicy;
use std::io::Write;
use std::time::Duration;

fn request_strategy() -> impl Strategy<Value = Request> {
    let arrivals = proptest::collection::vec((0u32..4, 1u64..50), 0..4)
        .prop_map(|rows| rows.into_iter().map(|(c, n)| (ColorId(c), n)).collect::<Vec<_>>());
    let entries = proptest::collection::vec((0u64..9, arrivals), 0..6);
    prop_oneof![
        (0u32..3, 0u64..u64::MAX).prop_map(|(proto, client)| Request::Hello { proto, client }),
        (0u64..u64::MAX, entries).prop_map(|(epoch, entries)| Request::SubmitBatch {
            epoch,
            entries
        }),
        (0u64..u64::MAX, 1u32..5).prop_map(|(epoch, parties)| Request::Tick { epoch, parties }),
        Just(Request::Stats),
        (0usize..8).prop_map(|shard| Request::Snapshot { shard }),
        Just(Request::Finish),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    let seqs = proptest::collection::vec(0u64..u64::MAX, 0..6);
    let text = proptest::collection::vec(32u8..127, 0..40)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"));
    prop_oneof![
        (0u32..3, 0usize..9).prop_map(|(proto, shards)| Response::Hello { proto, shards }),
        Just(Response::Ok),
        (0u64..u64::MAX, 0u64..u64::MAX)
            .prop_map(|(epoch, jobs)| Response::Queued { epoch, jobs }),
        (0u64..u64::MAX, seqs).prop_map(|(epoch, seqs)| Response::TickAck { epoch, seqs }),
        text.prop_map(|message| Response::Err { message }),
    ]
}

proptest! {
    #[test]
    fn requests_round_trip(req in request_strategy(), compress in 0u8..2) {
        let compress = compress == 1;
        let frame = encode_message(&req, compress).unwrap();
        let (back, consumed) = decode_message::<Request>(&frame).unwrap();
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(back, req);
    }

    #[test]
    fn responses_round_trip(resp in response_strategy(), compress in 0u8..2) {
        let compress = compress == 1;
        let frame = encode_message(&resp, compress).unwrap();
        let (back, consumed) = decode_message::<Response>(&frame).unwrap();
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(back, resp);
    }

    /// Flip one byte anywhere in the frame: the decoder must never hand
    /// back a *different* message than the one encoded. (A flip in the
    /// length prefix may legitimately read as Torn — a stream would keep
    /// waiting — but never as a wrong value.)
    #[test]
    fn single_byte_flips_never_forge_a_message(
        req in request_strategy(),
        pos_seed in 0usize..usize::MAX,
        bit in 0u8..8,
    ) {
        let frame = encode_message(&req, false).unwrap();
        let mut bent = frame.clone();
        let pos = pos_seed % bent.len();
        bent[pos] ^= 1 << bit;
        match decode_message::<Request>(&bent) {
            Ok((back, _)) => prop_assert_eq!(back, req, "flipped byte {} forged a message", pos),
            Err(FrameError::Corrupt) | Err(FrameError::Torn) => {}
        }
    }

    /// Every proper prefix of a frame is torn, never corrupt and never a
    /// message — the live-stream analogue of the WAL truncation sweep.
    #[test]
    fn every_truncation_reads_as_torn(req in request_strategy()) {
        let frame = encode_message(&req, true).unwrap();
        for cut in 0..frame.len() {
            match decode_message::<Request>(&frame[..cut]) {
                Err(FrameError::Torn) => {}
                other => prop_assert!(false, "cut at {}: expected Torn, got {:?}", cut, other),
            }
        }
    }

    /// The binary codec gets the same round-trip guarantee as JSON, in all
    /// four flag combinations, and the decoder reports which codec the
    /// frame used (the server answers in kind).
    #[test]
    fn binary_frames_round_trip_and_self_describe(
        req in request_strategy(),
        compress in 0u8..2,
    ) {
        let compress = compress == 1;
        let frame = encode_message_with(&req, Codec::Binary, compress).unwrap();
        let decoded = decode_message_full::<Request>(&frame).unwrap();
        prop_assert_eq!(decoded.consumed, frame.len());
        prop_assert_eq!(decoded.codec, Codec::Binary);
        prop_assert_eq!(decoded.value, req);
    }

    /// A JSON frame still reports Json after the binary codec became the
    /// default — the bit, not a negotiation, decides.
    #[test]
    fn json_frames_still_decode_as_json(resp in response_strategy()) {
        let frame = encode_message(&resp, false).unwrap();
        let decoded = decode_message_full::<Response>(&frame).unwrap();
        prop_assert_eq!(decoded.codec, Codec::Json);
        prop_assert_eq!(decoded.value, resp);
    }

    #[test]
    fn binary_single_byte_flips_never_forge_a_message(
        req in request_strategy(),
        pos_seed in 0usize..usize::MAX,
        bit in 0u8..8,
    ) {
        let frame = encode_message_with(&req, Codec::Binary, false).unwrap();
        let mut bent = frame.clone();
        let pos = pos_seed % bent.len();
        bent[pos] ^= 1 << bit;
        match decode_message::<Request>(&bent) {
            Ok((back, _)) => prop_assert_eq!(back, req, "flipped byte {} forged a message", pos),
            Err(FrameError::Corrupt) | Err(FrameError::Torn) => {}
        }
    }

    #[test]
    fn packbits_round_trips(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        let packed = packbits_compress(&bytes);
        prop_assert_eq!(packbits_decompress(&packed).unwrap(), bytes);
    }

    /// Runs longer than one control byte can express (128) still round-trip.
    #[test]
    fn packbits_handles_long_runs(byte in 0u8..=255, len in 120usize..600) {
        let bytes = vec![byte; len];
        let packed = packbits_compress(&bytes);
        prop_assert!(packed.len() <= 2 * len.div_ceil(128) + 2);
        prop_assert_eq!(packbits_decompress(&packed).unwrap(), bytes);
    }
}

#[test]
fn packbits_shrinks_run_heavy_input_and_encoder_uses_it() {
    let run_heavy: Vec<u8> = std::iter::repeat_n(0u8, 500)
        .chain(std::iter::repeat_n(7u8, 300))
        .collect();
    let packed = packbits_compress(&run_heavy);
    assert!(packed.len() < run_heavy.len() / 10, "800 run bytes pack tiny: {}", packed.len());

    // A message dominated by a long run compresses on the wire; the same
    // message without the flag does not — and both decode identically.
    let msg = Response::Err { message: String::from_utf8(vec![b'x'; 4096]).unwrap() };
    let plain = encode_message(&msg, false).unwrap();
    let packed = encode_message(&msg, true).unwrap();
    assert!(packed.len() < plain.len() / 4, "{} vs {}", packed.len(), plain.len());
    assert_eq!(decode_message::<Response>(&plain).unwrap().0, msg);
    assert_eq!(decode_message::<Response>(&packed).unwrap().0, msg);
}

#[test]
fn packbits_rejects_truncated_streams() {
    // Literal control byte promising 4 bytes, only 2 present.
    assert_eq!(packbits_decompress(&[3, 1, 2]), Err(FrameError::Corrupt));
    // Run control byte with no byte to repeat.
    assert_eq!(packbits_decompress(&[200]), Err(FrameError::Corrupt));
    // The no-op control byte is skipped.
    assert_eq!(packbits_decompress(&[128]).unwrap(), Vec::<u8>::new());
}

#[test]
fn unknown_flag_bits_are_corrupt() {
    // 0b01 is PackBits and 0b10 is the binary codec; 0b100 is undefined.
    let mut frame = Vec::new();
    let payload = [0b0000_0100u8, b'0'];
    rrs_service::storage::frame::encode_frame(&payload, &mut frame);
    assert!(matches!(
        decode_message::<Request>(&frame),
        Err(FrameError::Corrupt)
    ));
}

#[test]
fn absurd_length_prefix_is_rejected_not_buffered() {
    use std::net::{TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        // Claims a 1 GiB frame: the reader must bail immediately instead
        // of buffering toward it.
        s.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
        s.write_all(&[0u8; 64]).unwrap();
        s
    });
    let (conn, _) = listener.accept().unwrap();
    let mut msgs = MsgStream::new(conn).unwrap();
    let err = msgs.recv::<Request>().unwrap_err();
    assert!(err.to_string().contains("exceeds cap"), "{err}");
    drop(writer.join().unwrap());
}

/// A stream switching codecs mid-connection is fine: the receiver reports
/// each frame's codec, so a server can always answer in kind. Also pins
/// the body-byte accounting both sides of a sink report.
#[test]
fn msg_stream_reports_per_frame_codec_and_body_bytes() {
    use std::net::TcpListener;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let mut msgs = MsgStream::new(std::net::TcpStream::connect(addr).unwrap()).unwrap();
        msgs.set_codec(Codec::Binary);
        msgs.send(&Request::Tick { epoch: 1, parties: 1 }, false).unwrap();
        msgs.set_codec(Codec::Json);
        msgs.send(&Request::Stats, true).unwrap();
        (msgs.body_bytes_sent, msgs)
    });
    let (conn, _) = listener.accept().unwrap();
    let mut msgs = MsgStream::new(conn).unwrap();
    let first: Request = msgs.recv().unwrap();
    assert_eq!(first, Request::Tick { epoch: 1, parties: 1 });
    assert_eq!(msgs.last_recv_codec(), Codec::Binary);
    let second: Request = msgs.recv().unwrap();
    assert_eq!(second, Request::Stats);
    assert_eq!(msgs.last_recv_codec(), Codec::Json);
    let (sent, sender) = writer.join().unwrap();
    assert_eq!(sent, msgs.body_bytes_received, "both ends count the same body bytes");
    assert!(sent > 0);
    drop(sender);
}

/// A frame delivered one byte at a time reassembles: Torn means "keep
/// reading", and message boundaries need not align with reads.
#[test]
fn msg_stream_reassembles_byte_dribbled_frames() {
    use std::net::TcpListener;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let reqs = vec![
        Request::Hello { proto: wire::PROTO_VERSION, client: 9 },
        Request::SubmitBatch {
            epoch: 1,
            entries: vec![(3, vec![(ColorId(0), 5), (ColorId(2), 1)])],
        },
        Request::Tick { epoch: 1, parties: 1 },
    ];
    let sent = reqs.clone();
    let writer = std::thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let mut bytes = Vec::new();
        for req in &sent {
            bytes.extend_from_slice(&encode_message(req, true).unwrap());
        }
        for b in bytes {
            s.write_all(&[b]).unwrap();
            s.flush().unwrap();
        }
        s
    });
    let (conn, _) = listener.accept().unwrap();
    let mut msgs = MsgStream::new(conn).unwrap();
    for expected in &reqs {
        let got: Request = msgs.recv().unwrap();
        assert_eq!(&got, expected);
    }
    drop(writer.join().unwrap());
}

/// Satellite 1: the client reconnect schedule *is* the shard layer's
/// seeded-jittered backoff — bounded by the exponential envelope,
/// deterministic per seed, and actually jittered across seeds.
#[test]
fn reconnect_schedule_is_seeded_bounded_and_deterministic() {
    let policy = RetryPolicy {
        attempts: 5,
        op_timeout: Duration::from_millis(40),
        backoff: Duration::from_millis(10),
    };
    for seed in 0..8u64 {
        let schedule = wire_schedule(&policy, seed);
        assert_eq!(schedule.len(), 4, "one sleep per retry after the first failure");
        for (i, d) in schedule.iter().enumerate() {
            let attempt = i as u32 + 1;
            let base = policy.backoff.saturating_mul(1 << (attempt - 1)).min(policy.op_timeout);
            assert!(
                *d >= base / 2 && *d <= base,
                "seed {seed} attempt {attempt}: {d:?} outside [{:?}, {:?}]",
                base / 2,
                base
            );
        }
        assert_eq!(schedule, wire_schedule(&policy, seed), "deterministic per seed");
    }
    let distinct: std::collections::BTreeSet<Vec<Duration>> =
        (0..8u64).map(|seed| wire_schedule(&policy, seed)).collect();
    assert!(distinct.len() > 1, "jitter differentiates seeds");
}

fn wire_schedule(policy: &RetryPolicy, seed: u64) -> Vec<Duration> {
    rrs_service::net::reconnect_schedule(policy, seed)
}
