//! Service-level storage-fault suite: the supervised service over a
//! [`DiskBackend`] whose group commits fail in controlled ways.
//!
//! The claims under test are the self-healing storage contract:
//!
//! * **Transient IO errors** are absorbed by seeded-jittered retries inside
//!   the commit — no degradation, full durability, identical results.
//! * **IO-error bursts** and **disk-full outages** flip the store into
//!   degraded memory-mirror mode: the service keeps answering (results stay
//!   bit-identical to a fault-free run), every commit while degraded doubles
//!   as a re-attach probe, and the heal backfills the missed records so a
//!   cold start still recovers *everything*.
//! * **Slow IO** only perturbs timing, never results.
//! * **Random IO fault plans** (the chaos-lattice generator) never panic the
//!   service, never break job conservation, and always leave a recoverable
//!   data directory.

use rrs_service::{
    DiskBackend, DiskConfig, FaultPlan, IngestMode, PolicySpec, RetryPolicy, ShedConfig,
    Supervisor, SupervisorConfig, TenantSpec,
};
use rrs_core::{ColorId, ColorTable, RunResult};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

const DELAY_BOUNDS: &[u64] = &[2, 4, 8];
const TENANTS: u64 = 5;
const ROUNDS: u64 = 16;

fn spec(policy: PolicySpec) -> TenantSpec {
    TenantSpec::new(policy, ColorTable::from_delay_bounds(DELAY_BOUNDS), 4, 2)
}

fn policy_for(id: u64) -> PolicySpec {
    let all = PolicySpec::all();
    all[(id as usize) % all.len()]
}

fn arrivals(tenant: u64, round: u64) -> Vec<(ColorId, u64)> {
    let mut out = Vec::new();
    for c in 0..DELAY_BOUNDS.len() as u64 {
        let mix = tenant
            .wrapping_mul(31)
            .wrapping_add(round.wrapping_mul(17))
            .wrapping_add(c.wrapping_mul(7));
        if mix % 3 != 0 {
            out.push((ColorId(c as u32), 1 + mix % 4));
        }
    }
    out
}

fn config(shards: usize, ingest: IngestMode) -> SupervisorConfig {
    SupervisorConfig {
        shards,
        queue_capacity: 8,
        checkpoint_every: 5,
        retry: RetryPolicy {
            attempts: 4,
            op_timeout: Duration::from_millis(250),
            backoff: Duration::from_millis(2),
        },
        shed: ShedConfig::default(),
        ingest,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rrs-iofault-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn disk_backend(dir: &Path) -> Box<DiskBackend> {
    let mut cfg = DiskConfig::new(dir);
    cfg.io_backoff = Duration::from_micros(50); // keep injected retries fast
    Box::new(DiskBackend::new(cfg))
}

/// Drives the standard workload over a disk-backed supervisor, returning
/// the final results plus the storage counters observed before `finish`.
fn disk_run(
    dir: &Path,
    ingest: IngestMode,
    plan: &FaultPlan,
) -> (BTreeMap<u64, RunResult>, rrs_service::StorageStats) {
    let mut sup =
        Supervisor::with_storage(config(2, ingest), plan, disk_backend(dir)).unwrap();
    for id in 0..TENANTS {
        sup.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    for round in 0..ROUNDS {
        for id in 0..TENANTS {
            sup.submit(id, arrivals(id, round)).unwrap();
        }
        sup.tick().unwrap();
    }
    let stats = sup.stats().unwrap();
    assert!(stats.conserves_jobs(), "job conservation broken under IO faults");
    let storage = stats.storage.clone();
    (sup.finish().unwrap(), storage)
}

/// The fault-free oracle: the same workload, memory-backed.
fn clean_run(ingest: IngestMode) -> BTreeMap<u64, RunResult> {
    let mut sup = Supervisor::with_faults(config(2, ingest), &FaultPlan::none()).unwrap();
    for id in 0..TENANTS {
        sup.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    for round in 0..ROUNDS {
        for id in 0..TENANTS {
            sup.submit(id, arrivals(id, round)).unwrap();
        }
        sup.tick().unwrap();
    }
    sup.finish().unwrap()
}

/// Cold-starts a supervisor from `dir` and drains it — the disk-recovery
/// oracle. When every fault healed before shutdown this must reproduce the
/// live run's results exactly.
fn cold_start_results(dir: &Path, ingest: IngestMode) -> BTreeMap<u64, RunResult> {
    let mut sup =
        Supervisor::with_storage(config(2, ingest), &FaultPlan::none(), disk_backend(dir))
            .unwrap();
    let stats = sup.stats().unwrap();
    assert!(stats.conserves_jobs(), "recovered state must conserve jobs");
    sup.finish().unwrap()
}

#[test]
fn transient_io_errors_are_retried_with_no_visible_effect() {
    let dir = temp_dir("transient");
    let plan = FaultPlan::parse("transient-io@4:0:2, transient-io@6:1:3", 2, ROUNDS).unwrap();
    let (results, storage) = disk_run(&dir, IngestMode::Batched, &plan);
    assert!(storage.retries >= 5, "every injected failure retried: {}", storage.retries);
    assert_eq!(storage.degraded_commits, 0, "retries absorbed the glitches in place");
    assert_eq!(results, clean_run(IngestMode::Batched), "transient IO changed results");
    assert_eq!(
        cold_start_results(&dir, IngestMode::Batched),
        results,
        "cold start lost records"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn io_error_burst_degrades_heals_and_stays_bit_identical() {
    let dir = temp_dir("burst");
    let plan = FaultPlan::parse("io-error-burst@5:0:2, io-error-burst@7:1:3", 2, ROUNDS).unwrap();
    let (results, storage) = disk_run(&dir, IngestMode::Batched, &plan);
    assert!(storage.degraded_commits >= 2, "outage commits served from the mirror");
    assert!(storage.heal_events >= 2, "both shards re-attached: {}", storage.heal_events);
    assert_eq!(results, clean_run(IngestMode::Batched), "the outage changed results");
    // The heal backfilled the mirror-only records: full durability.
    assert_eq!(
        cold_start_results(&dir, IngestMode::Batched),
        results,
        "degraded-era records were not backfilled"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_full_outage_is_survived_and_healed() {
    let dir = temp_dir("full");
    let plan = FaultPlan::parse("disk-full@6:0:2", 2, ROUNDS).unwrap();
    let (results, storage) = disk_run(&dir, IngestMode::Batched, &plan);
    assert!(storage.degraded_commits >= 1);
    assert!(storage.heal_events >= 1, "the shard re-attached after the outage");
    assert_eq!(results, clean_run(IngestMode::Batched));
    assert_eq!(cold_start_results(&dir, IngestMode::Batched), results);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_io_perturbs_timing_but_never_results() {
    let dir = temp_dir("slow");
    let plan = FaultPlan::parse("slow-io@3:0:25, slow-io@9:1:25", 2, ROUNDS).unwrap();
    let (results, storage) = disk_run(&dir, IngestMode::Batched, &plan);
    assert_eq!(storage.degraded_commits, 0, "slowness is not failure");
    assert_eq!(results, clean_run(IngestMode::Batched));
    assert_eq!(cold_start_results(&dir, IngestMode::Batched), results);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_command_ingest_survives_io_faults_identically() {
    let dir = temp_dir("percmd");
    let plan =
        FaultPlan::parse("transient-io@9:0:2, io-error-burst@14:1:2", 2, ROUNDS).unwrap();
    let (results, _) = disk_run(&dir, IngestMode::PerCommand, &plan);
    assert_eq!(results, clean_run(IngestMode::PerCommand));
    assert_eq!(cold_start_results(&dir, IngestMode::PerCommand), results);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The chaos-lattice generator never panics the service, never breaks
/// conservation, and always leaves a directory a cold start can recover
/// (random plans may include torn writes, so the cold start is only checked
/// for soundness, not equality — that prefix oracle lives in `rrs chaos`).
#[test]
fn random_io_plans_are_survivable_and_recoverable() {
    for seed in [1u64, 7, 1312] {
        let dir = temp_dir(&format!("rand-{seed}"));
        let plan = FaultPlan::random_io(seed, 2, ROUNDS, 4);
        assert!(!plan.faults.is_empty(), "seed {seed} generated no faults");
        let (results, _) = disk_run(&dir, IngestMode::Batched, &plan);
        assert_eq!(results.len(), TENANTS as usize);
        let mut sup = Supervisor::with_storage(
            config(2, IngestMode::Batched),
            &FaultPlan::none(),
            disk_backend(&dir),
        )
        .unwrap();
        let stats = sup.stats().unwrap();
        assert!(stats.conserves_jobs(), "seed {seed}: recovered state conserves jobs");
        sup.finish().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
