//! Chaos tests: the supervised service under injected faults and overload.
//!
//! The core claim is the acceptance criterion of the supervision layer: with
//! a seeded [`FaultPlan`] that kills each shard's worker once mid-run, the
//! supervised final per-tenant [`RunResult`]s are **bit-identical** to a
//! fault-free run (both a supervised one and a bare [`Service`] one) —
//! checkpoint + WAL recovery loses nothing, including commands that were
//! sitting in a dead worker's queue. Mixed fault plans (stalls, dropped
//! replies, corrupted snapshots) change the *timing* of the run but never
//! its results. Under sustained overload with shedding enabled the run
//! completes without deadlock, sheds deterministically at the inbox
//! watermark, and accounts for every submitted job.
//!
//! `chaos_random_smoke` adds a time-boxed random-plan pass when
//! `RRS_CHAOS_MS` is set (used by CI's chaos job); the seed is printed
//! before each iteration so a failure reproduces from the log.

use rrs_core::{ColorId, ColorTable, RunResult};
use rrs_service::{
    FaultPlan, IngestMode, PolicySpec, RetryPolicy, Service, ServiceConfig, ShedConfig,
    Supervisor, SupervisorConfig, TenantSpec,
};
use std::collections::BTreeMap;
use std::sync::Once;
use std::time::Duration;

const DELAY_BOUNDS: &[u64] = &[2, 4, 8];
const N: usize = 4;
const DELTA: u64 = 2;
const TENANTS: u64 = 5;
const ROUNDS: u64 = 16;

/// Injected panics are part of the test; keep them off stderr while letting
/// unexpected panics through to the default hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload().downcast_ref::<&str>().map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn spec(policy: PolicySpec) -> TenantSpec {
    TenantSpec::new(policy, ColorTable::from_delay_bounds(DELAY_BOUNDS), N, DELTA)
}

fn policy_for(id: u64) -> PolicySpec {
    let all = PolicySpec::all();
    all[(id as usize) % all.len()]
}

/// Deterministic per-tenant arrivals: a function of `(tenant, round)` only,
/// so every execution path sees the same workload.
fn arrivals(tenant: u64, round: u64) -> Vec<(ColorId, u64)> {
    let mut out = Vec::new();
    for c in 0..DELAY_BOUNDS.len() as u64 {
        let mix = tenant
            .wrapping_mul(31)
            .wrapping_add(round.wrapping_mul(17))
            .wrapping_add(c.wrapping_mul(7));
        if mix % 3 != 0 {
            out.push((ColorId(c as u32), 1 + mix % 4));
        }
    }
    out
}

fn quick_config(shards: usize) -> SupervisorConfig {
    SupervisorConfig {
        shards,
        queue_capacity: 8,
        checkpoint_every: 5,
        retry: RetryPolicy {
            attempts: 4,
            op_timeout: Duration::from_millis(250),
            backoff: Duration::from_millis(2),
        },
        shed: ShedConfig::default(),
        ingest: IngestMode::default(),
    }
}

/// Runs the standard workload through a supervisor; returns final results
/// and the recovery count.
fn supervised_run(
    config: SupervisorConfig,
    plan: &FaultPlan,
) -> (BTreeMap<u64, RunResult>, u64) {
    quiet_injected_panics();
    let mut sup = Supervisor::with_faults(config, plan).unwrap();
    for id in 0..TENANTS {
        sup.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    for round in 0..ROUNDS {
        for id in 0..TENANTS {
            sup.submit(id, arrivals(id, round)).unwrap();
        }
        sup.tick().unwrap();
    }
    let recoveries = sup.recoveries();
    (sup.finish().unwrap(), recoveries)
}

/// The same workload through a bare, unsupervised [`Service`].
fn plain_run(shards: usize) -> BTreeMap<u64, RunResult> {
    let mut svc = Service::new(ServiceConfig { shards, queue_capacity: 8 }).unwrap();
    for id in 0..TENANTS {
        svc.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    for round in 0..ROUNDS {
        for id in 0..TENANTS {
            let a = arrivals(id, round);
            if !a.is_empty() {
                svc.submit(id, a).unwrap();
            }
        }
        svc.tick().unwrap();
    }
    svc.finish().unwrap()
}

/// The acceptance criterion: kill each shard's worker once at a seeded tick;
/// recovery from checkpoint + WAL must be bit-identical to a run that never
/// failed — supervised or not.
#[test]
fn kill_each_shard_once_is_bit_identical_to_unfailed_run() {
    let shards = 2;
    let plan = FaultPlan::kill_each_shard_once(shards, ROUNDS, 42);
    assert_eq!(plan.faults.len(), shards);
    let (chaotic, recoveries) = supervised_run(quick_config(shards), &plan);
    assert!(recoveries >= shards as u64, "each injected kill recovered: {recoveries}");
    let (clean, clean_recoveries) = supervised_run(quick_config(shards), &FaultPlan::none());
    assert_eq!(clean_recoveries, 0, "no spurious recoveries without faults");
    assert_eq!(chaotic, clean, "recovery diverged from the unfailed supervised run");
    assert_eq!(chaotic, plain_run(shards), "recovery diverged from the bare service");
}

/// Stalls, dropped replies and corrupted snapshots perturb timing and
/// trigger retries, recoveries and checkpoint rejections — but results are
/// timing-independent.
#[test]
fn mixed_fault_plan_preserves_results() {
    let shards = 2;
    let plan = FaultPlan::parse(
        "stall@2:0:40, drop-reply@5:0, corrupt-snapshot@4:1, panic@7:1, panic@11:0",
        shards,
        ROUNDS,
    )
    .unwrap();
    let (chaotic, recoveries) = supervised_run(quick_config(shards), &plan);
    assert!(recoveries >= 2, "both panics force recovery: {recoveries}");
    assert_eq!(chaotic, plain_run(shards), "mixed faults changed results");
}

/// 4× overload against an inbox watermark: the run completes without
/// deadlock, sheds are per-tenant and deterministic (two identical runs
/// agree), and every submitted job is accounted for as
/// `submitted = arrived + inbox + shed`.
#[test]
fn overload_sheds_deterministically_instead_of_deadlocking() {
    let watermark = 4u64;
    let per_round = 4 * watermark; // 4× the admissible burst
    let config = SupervisorConfig {
        shed: ShedConfig { inbox_watermark: Some(watermark), queue_watermark: None },
        ..quick_config(2)
    };
    let run = |config: SupervisorConfig| {
        let mut sup = Supervisor::with_faults(config, &FaultPlan::none()).unwrap();
        for id in 0..TENANTS {
            sup.add_tenant(id, spec(policy_for(id))).unwrap();
        }
        for _ in 0..ROUNDS {
            for id in 0..TENANTS {
                sup.submit(id, vec![(ColorId(0), per_round)]).unwrap();
            }
            sup.tick().unwrap();
        }
        let stats = sup.stats().unwrap();
        sup.finish().unwrap();
        stats
    };
    let stats = run(config);
    let submitted = ROUNDS * per_round;
    for (id, p) in &stats.tenants {
        assert!(p.shed > 0, "tenant {id} shed nothing under 4x overload");
        assert_eq!(
            p.arrived + p.inbox + p.shed,
            submitted,
            "tenant {id}: submitted jobs not accounted for"
        );
    }
    assert!(stats.conserves_jobs());
    let again = run(config);
    let sheds = |s: &rrs_service::ServiceStats| -> Vec<(u64, u64)> {
        s.tenants.iter().map(|(id, p)| (*id, p.shed)).collect()
    };
    assert_eq!(sheds(&stats), sheds(&again), "inbox shedding must be deterministic");
}

/// Queue-watermark shedding: with the watermark at 0 every submit is shed at
/// the door, so the engines never see a job, yet stats attribute every shed
/// job to its tenant and `finish` completes cleanly.
#[test]
fn queue_watermark_sheds_at_the_door() {
    let config = SupervisorConfig {
        shed: ShedConfig { inbox_watermark: None, queue_watermark: Some(0) },
        ..quick_config(2)
    };
    let mut sup = Supervisor::with_faults(config, &FaultPlan::none()).unwrap();
    for id in 0..TENANTS {
        sup.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    for _ in 0..4 {
        for id in 0..TENANTS {
            sup.submit(id, vec![(ColorId(0), 3)]).unwrap();
        }
        sup.tick().unwrap();
    }
    let stats = sup.stats().unwrap();
    for (id, p) in &stats.tenants {
        assert_eq!(p.shed, 12, "tenant {id}: every job shed at the queue watermark");
        assert_eq!(p.arrived, 0, "tenant {id}: no job reached the engine");
    }
    assert_eq!(stats.shed(), TENANTS * 12);
    let results = sup.finish().unwrap();
    assert_eq!(results.len(), TENANTS as usize);
}

/// Recovery survives a corrupted checkpoint: the corrupt snapshot reply is
/// rejected at validation, so a later panic recovers from the older
/// checkpoint with a longer WAL replay — still bit-identical.
#[test]
fn corrupt_checkpoint_then_panic_recovers_from_older_state() {
    let shards = 1;
    // checkpoint_every = 5 → the tick-5 checkpoint gets the corrupt reply.
    let plan = FaultPlan::parse("corrupt-snapshot@5, panic@9", shards, ROUNDS).unwrap();
    let (chaotic, recoveries) = supervised_run(quick_config(shards), &plan);
    assert!(recoveries >= 1);
    assert_eq!(chaotic, plain_run(shards), "fallback recovery diverged");
}

/// Random *IO* fault plans over the disk backend: transient errors, slow
/// commits, whole-commit bursts and disk-full outages (plus the classic
/// torn-write/corrupt-CRC crash faults) must never change the live run's
/// results — the degraded memory mirror keeps serving while the disk heals.
#[test]
fn random_io_chaos_on_disk_preserves_results() {
    for seed in [3u64, 99] {
        chaos_io_one(seed);
    }
}

/// One seeded random-IO-plan run over the disk backend, compared against a
/// fault-free oracle. Shared by the fixed-seed test above and the
/// time-boxed `chaos_random_smoke`.
fn chaos_io_one(seed: u64) {
    use rrs_service::{DiskBackend, DiskConfig};
    quiet_injected_panics();
    let shards = 1 + (seed % 3) as usize;
    let plan = rrs_service::FaultPlan::random_io(seed, shards, ROUNDS, 4);
    let dir = std::env::temp_dir().join(format!(
        "rrs-chaos-io-{seed}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = DiskConfig::new(&dir);
    cfg.io_backoff = Duration::from_micros(50);
    let mut sup = Supervisor::with_storage(
        quick_config(shards),
        &plan,
        Box::new(DiskBackend::new(cfg)),
    )
    .unwrap();
    for id in 0..TENANTS {
        sup.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    for round in 0..ROUNDS {
        for id in 0..TENANTS {
            sup.submit(id, arrivals(id, round)).unwrap();
        }
        sup.tick().unwrap();
    }
    let chaotic = sup.finish().unwrap();
    let (clean, _) = supervised_run(quick_config(shards), &FaultPlan::none());
    assert_eq!(chaotic, clean, "seed {seed}: IO fault plan changed results");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker that dies every epoch is a restart storm. The circuit breaker
/// must bound the respawn count (trip, shed with accounting, stay open),
/// keep job conservation intact, and still let `finish` drain cleanly via
/// the forced half-open probe.
#[test]
fn breaker_bounds_a_restart_storm_under_the_chaos_workload() {
    use rrs_service::BreakerConfig;
    quiet_injected_panics();
    let shards = 2;
    let storm = FaultPlan {
        faults: (1..=ROUNDS)
            .map(|t| rrs_service::Fault {
                shard: 0,
                at_tick: t,
                kind: rrs_service::FaultKind::Panic,
            })
            .collect(),
    };
    let mut sup = Supervisor::with_faults(quick_config(shards), &storm).unwrap();
    sup.set_breaker(BreakerConfig { trip_after: 3, window: 32, cooldown: 10_000, probes: 2 });
    for id in 0..TENANTS {
        sup.add_tenant(id, spec(policy_for(id))).unwrap();
    }
    for round in 0..ROUNDS {
        for id in 0..TENANTS {
            sup.submit(id, arrivals(id, round)).unwrap();
        }
        sup.tick().unwrap();
    }
    assert_eq!(sup.breaker_trips(), 1, "the storm trips exactly once");
    assert!(
        sup.recoveries() <= 4,
        "respawns bounded by trip_after + forced probe, got {}",
        sup.recoveries()
    );
    let stats = sup.stats().unwrap();
    assert!(stats.conserves_jobs(), "shed accounting keeps conservation intact");
    assert!(
        stats.tenants.iter().any(|(_, p)| p.shed > 0),
        "traffic to the open shard was shed with per-tenant accounting"
    );
    let results = sup.finish().unwrap();
    assert_eq!(results.len(), TENANTS as usize, "finish drains every tenant");
}

/// SplitMix64, as in the fuzz suite.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn chaos_one(seed: u64) {
    let shards = 1 + (seed % 3) as usize;
    let plan = FaultPlan::random(seed, shards, ROUNDS, 4);
    let (chaotic, _) = supervised_run(quick_config(shards), &plan);
    let (clean, _) = supervised_run(quick_config(shards), &FaultPlan::none());
    assert_eq!(chaotic, clean, "seed {seed}: random fault plan changed results");
}

/// Time-boxed random-plan pass, enabled by `RRS_CHAOS_MS` (milliseconds).
/// Without the variable it runs a single extra seed of each kind, so
/// tier-1 stays fast and deterministic. Iterations alternate between
/// worker-fault plans on the memory backend and storage-IO-fault plans on
/// the disk backend, so the smoke exercises both fault families.
#[test]
fn chaos_random_smoke() {
    let budget_ms: u64 = std::env::var("RRS_CHAOS_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if budget_ms == 0 {
        chaos_one(0xBADC_0FFE);
        chaos_io_one(0xBADC_0FFE);
        return;
    }
    let start = std::time::Instant::now();
    let mut seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1);
    let mut iterations = 0u64;
    while start.elapsed().as_millis() < budget_ms as u128 {
        // Print the seed first so a failure is reproducible from the log.
        if iterations.is_multiple_of(2) {
            println!("chaos_random_smoke: worker seed {seed}");
            chaos_one(seed);
        } else {
            println!("chaos_random_smoke: io seed {seed}");
            chaos_io_one(seed);
        }
        seed = Rng(seed).next();
        iterations += 1;
    }
    println!("chaos_random_smoke: {iterations} iterations in {:?}", start.elapsed());
}
