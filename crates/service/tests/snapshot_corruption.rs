//! Malformed and corrupted snapshots must surface as typed errors, never
//! panics: truncated JSON payloads fail to parse, duplicate tenant entries
//! and job-conservation violations are caught by [`ShardSnapshot::validate`],
//! misrouted tenants are refused by [`Service::restore_shard`], and engine
//! state tampering is detected by restore-time replay verification
//! ([`ServiceError::Divergence`]). A property test mutates valid
//! serializations byte-wise and checks that every outcome is parse-error,
//! typed validation error, or a benign equivalent snapshot — never a panic
//! and never a silently-adopted corrupt state.

use proptest::prelude::*;
use rrs_core::{ColorId, ColorTable};
use rrs_service::{
    shard_for, PolicySpec, Service, ServiceConfig, ServiceError, ShardSnapshot, Tenant,
    TenantSpec,
};

const SHARDS: usize = 2;

fn spec() -> TenantSpec {
    TenantSpec::new(PolicySpec::DlruEdf, ColorTable::from_delay_bounds(&[2, 4]), 4, 2)
}

/// A small driven service plus one of its shard snapshots mid-run.
fn service_with_snapshot() -> (Service, ShardSnapshot) {
    let mut svc = Service::new(ServiceConfig { shards: SHARDS, queue_capacity: 8 }).unwrap();
    for id in 0..6u64 {
        svc.add_tenant(id, spec()).unwrap();
    }
    for round in 0..5u64 {
        for id in 0..6u64 {
            svc.submit(id, vec![(ColorId((id % 2) as u32), 1 + round % 3)]).unwrap();
        }
        svc.tick().unwrap();
    }
    let snap = svc.snapshot_shard(shard_for(0, SHARDS)).unwrap();
    assert!(!snap.tenants.is_empty());
    (svc, snap)
}

#[test]
fn truncated_json_is_a_parse_error_not_a_panic() {
    let (svc, snap) = service_with_snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    // Every proper prefix must fail to parse (or, for the rare prefix that
    // happens to be valid JSON of the wrong shape, fail to deserialize) —
    // without panicking.
    for cut in 0..json.len() {
        // Skip cuts inside a multi-byte character; those aren't valid UTF-8
        // strings to begin with.
        let Some(prefix) = json.get(..cut) else { continue };
        assert!(
            serde_json::from_str::<ShardSnapshot>(prefix).is_err(),
            "prefix of {cut} bytes parsed as a full snapshot"
        );
    }
    // The untruncated payload still round-trips.
    let full: ShardSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(full, snap);
    svc.finish().unwrap();
}

#[test]
fn duplicate_tenant_ids_are_rejected() {
    let (svc, snap) = service_with_snapshot();
    let mut bad = snap.clone();
    let dup = bad.tenants[0].clone();
    bad.tenants.insert(1, dup.clone());
    assert!(matches!(
        bad.validate(SHARDS, |id| shard_for(id, SHARDS)),
        Err(ServiceError::DuplicateTenant(id)) if id == dup.0
    ));
    assert!(matches!(
        svc.rollback_shard(bad),
        Err(ServiceError::DuplicateTenant(_))
    ));
    // Out-of-order (but distinct) entries are corruption too.
    if snap.tenants.len() >= 2 {
        let mut unsorted = snap.clone();
        unsorted.tenants.reverse();
        assert!(matches!(
            unsorted.validate(SHARDS, |id| shard_for(id, SHARDS)),
            Err(ServiceError::Corrupt(_))
        ));
    }
    svc.finish().unwrap();
}

#[test]
fn conservation_violations_and_tampered_state_are_typed_errors() {
    let (svc, snap) = service_with_snapshot();
    // Inflate an executed counter: breaks arrived = executed+dropped+pending.
    let mut bad = snap.clone();
    bad.tenants[0].1.engine.result.executed += 1;
    assert!(matches!(
        bad.validate(SHARDS, |id| shard_for(id, SHARDS)),
        Err(ServiceError::Corrupt(_))
    ));
    // Tamper conservatively: bump the recorded reconfiguration cost, which
    // leaves job conservation intact so structural validation passes — but
    // replay verification must catch the divergence.
    let mut subtle = snap.tenants[0].1.clone();
    subtle.engine.result.cost.reconfig = subtle.engine.result.cost.reconfig.wrapping_add(1);
    assert!(subtle.conserves_jobs(), "tamper must stay structurally valid");
    assert!(
        matches!(Tenant::restore(subtle), Err(ServiceError::Divergence(_))),
        "replay verification missed tampered engine state"
    );
    svc.finish().unwrap();
}

#[test]
fn misrouted_tenants_are_refused_by_restore() {
    let (mut svc, snap) = service_with_snapshot();
    let home = snap.shard;
    let other = (home + 1) % SHARDS;
    // Claim the same tenants live on the wrong shard.
    let mut bad = snap.clone();
    bad.shard = other;
    svc.kill_shard(other).unwrap();
    match svc.restore_shard(bad) {
        Err(ServiceError::MisroutedTenant { tenant, shard, expected }) => {
            assert_eq!(shard, other);
            assert_eq!(expected, home);
            assert_eq!(shard_for(tenant, SHARDS), home);
        }
        other => panic!("expected MisroutedTenant, got {other:?}"),
    }
    // An out-of-range shard index is caught before anything else.
    let mut way_off = snap.clone();
    way_off.shard = 99;
    assert!(matches!(
        svc.restore_shard(way_off),
        Err(ServiceError::UnknownShard(99))
    ));
    // The honest snapshot restores the still-dead shard only if it is its
    // own; `home` is alive, so restoring it is refused as such.
    assert!(svc.restore_shard(snap).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte-level mutations of a valid snapshot serialization: every mutant
    /// either fails to parse, fails typed validation/replay, or is a benign
    /// snapshot that still validates — no panic, no silent corruption.
    #[test]
    fn mutated_serializations_never_panic(
        pos_seed in 0u64..10_000,
        byte in 0u8..=255,
    ) {
        let mut t = Tenant::new(spec()).unwrap();
        for round in 0..6u64 {
            t.submit(&[(ColorId((round % 2) as u32), 1 + round % 3)]).unwrap();
            t.tick().unwrap();
        }
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let mut bytes = json.clone().into_bytes();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] = byte;
        let Ok(mutated) = String::from_utf8(bytes) else { return Ok(()); };
        match serde_json::from_str::<rrs_service::TenantSnapshot>(&mutated) {
            Err(_) => {} // parse error: fine
            Ok(parsed) => {
                // Whatever parsed must either restore cleanly (benign
                // mutation, e.g. inside insignificant whitespace) or be
                // caught by replay verification / engine construction.
                match Tenant::restore(parsed) {
                    Ok(rebuilt) => {
                        prop_assert!(
                            rebuilt.progress().arrived
                                == rebuilt.progress().executed
                                    + rebuilt.progress().dropped
                                    + rebuilt.progress().pending,
                            "restored mutant violates conservation"
                        );
                    }
                    Err(ServiceError::Divergence(_))
                    | Err(ServiceError::Engine(_))
                    | Err(ServiceError::Corrupt(_)) => {}
                    Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
                }
            }
        }
    }
}
