//! Binary-codec round-trip suite: every message the service persists or
//! ships over a socket must survive the `rrs-codec` binary format
//! bit-identically, and the codec layer itself must uphold the same
//! adversarial guarantees the JSON path always had.
//!
//! * **Variant coverage** — every [`WalRecord`], [`Checkpoint`],
//!   [`Request`] and [`Response`] variant round-trips through a binary
//!   frame; the complex payloads (`Stats`, `Snapshot`, `Results`) come
//!   from a live mini-run, not hand-built stand-ins.
//! * **Corruption** — flipping any single bit of a binary WAL frame never
//!   yields a *different* record.
//! * **Truncation** — every proper prefix of a binary frame reads as
//!   torn, never as a bogus value.
//! * **Emit/tree agreement** — the streaming `Emit` encode of a derived
//!   type produces byte-identical output to encoding its `to_value()`
//!   tree, the invariant the zero-alloc hot paths rely on.

use proptest::prelude::*;
use rrs_core::{ColorId, ColorTable};
use rrs_service::net::wire::{self, Request, Response};
use rrs_service::storage::frame::{self, Codec, FrameError};
use rrs_service::{
    Checkpoint, FaultPlan, MemoryBackend, PolicySpec, Supervisor, SupervisorConfig, TenantSpec,
    WalRecord,
};
use serde::Serialize;

fn spec_for(id: u64) -> TenantSpec {
    let policies = [PolicySpec::DlruEdf, PolicySpec::Dlru, PolicySpec::Edf];
    TenantSpec::new(
        policies[(id % 3) as usize],
        ColorTable::from_delay_bounds(&[2, 4, 8]),
        4,
        2,
    )
}

/// Frame-level binary round trip: encode with the binary codec, decode,
/// compare. Also asserts the frame carries the binary tag so a scan can
/// tell it from legacy JSON.
fn frame_round_trip<T>(value: &T)
where
    T: Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let bytes = frame::encode_value_with(value, Codec::Binary).unwrap();
    assert_eq!(bytes[frame::FRAME_HEADER], frame::BINARY_TAG, "binary frames are tagged");
    let (back, consumed) = frame::decode_value::<T>(&bytes).unwrap();
    assert_eq!(consumed, bytes.len());
    assert_eq!(&back, value);
}

/// Wire-level binary round trip through a complete framed message.
fn wire_round_trip<T>(value: &T)
where
    T: Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    for compress in [false, true] {
        let bytes = wire::encode_message_with(value, Codec::Binary, compress).unwrap();
        let decoded = wire::decode_message_full::<T>(&bytes).unwrap();
        assert_eq!(decoded.consumed, bytes.len());
        assert_eq!(decoded.codec, Codec::Binary);
        assert_eq!(&decoded.value, value);
    }
}

fn wal_record_exemplars() -> Vec<WalRecord> {
    vec![
        WalRecord::AddTenant { id: 7, spec: spec_for(7) },
        WalRecord::Submit {
            tenant: 3,
            arrivals: vec![(ColorId(0), 5), (ColorId(2), 1)],
        },
        WalRecord::SubmitBatch {
            entries: vec![
                (1, vec![(ColorId(1), 2)]),
                (0, vec![]),
                (1, vec![(ColorId(0), 9), (ColorId(2), 4)]),
            ],
        },
        WalRecord::Tick,
    ]
}

#[test]
fn every_wal_record_variant_round_trips_binary() {
    for record in wal_record_exemplars() {
        frame_round_trip(&record);
        // The point of the codec: records shrink vs JSON (a bare `Tick` —
        // one string either way — merely ties).
        let binary = frame::encode_value_with(&record, Codec::Binary).unwrap();
        let json = frame::encode_value_with(&record, Codec::Json).unwrap();
        let strictly = !matches!(record, WalRecord::Tick);
        assert!(
            if strictly { binary.len() < json.len() } else { binary.len() <= json.len() },
            "{record:?}: binary {} vs json {}",
            binary.len(),
            json.len()
        );
    }
}

#[test]
fn every_request_variant_round_trips_binary() {
    let requests = vec![
        Request::Hello { proto: wire::PROTO_VERSION, client: 42 },
        Request::AddTenant { id: 2, spec: spec_for(2) },
        Request::SubmitBatch {
            epoch: 9,
            entries: vec![(0, vec![(ColorId(0), 3)]), (5, vec![(ColorId(2), 1)])],
        },
        Request::Tick { epoch: 9, parties: 4 },
        Request::Stats,
        Request::Snapshot { shard: 3 },
        Request::Finish,
    ];
    for request in requests {
        wire_round_trip(&request);
    }
}

/// The complex response payloads (`Stats`, `Snapshot`, `Results`) come
/// from a real supervised run, so the round trip covers every nested
/// struct the service actually produces — histograms, per-shard stats,
/// tenant snapshots, run results — not simplified stand-ins.
#[test]
fn every_response_variant_round_trips_binary_with_live_payloads() {
    let config = SupervisorConfig { shards: 2, checkpoint_every: 4, ..SupervisorConfig::default() };
    let mut sup =
        Supervisor::with_storage(config, &FaultPlan::none(), Box::new(MemoryBackend::new()))
            .unwrap();
    for id in 0..4u64 {
        sup.add_tenant(id, spec_for(id)).unwrap();
    }
    for round in 0..10u64 {
        for id in 0..4u64 {
            sup.submit(id, vec![(ColorId(((id + round) % 3) as u32), 1 + round % 3)]).unwrap();
        }
        sup.tick().unwrap();
    }
    let stats = sup.stats().unwrap();
    let snapshot = sup.snapshot_shard(1).unwrap();
    let ticks = sup.shard_ticks(1).unwrap();
    let results = sup.finish().unwrap();

    // A checkpoint wrapping the live snapshot exercises the same payload
    // the disk store persists at adoption time.
    frame_round_trip(&Checkpoint { snapshot: snapshot.clone(), wal_offset: 31, ticks });
    frame_round_trip(&Checkpoint::genesis(0));

    let responses = vec![
        Response::Hello { proto: wire::PROTO_VERSION, shards: 2 },
        Response::Ok,
        Response::Queued { epoch: 3, jobs: 17 },
        Response::TickAck { epoch: 3, seqs: vec![11, 13] },
        Response::Stats { stats: Box::new(stats) },
        Response::Snapshot { snapshot: Box::new(snapshot) },
        Response::Results { results: results.into_iter().collect() },
        Response::Err { message: "shard 9 out of range".into() },
    ];
    for response in responses {
        wire_round_trip(&response);
    }
}

/// The streaming `Emit` path and the `to_value()` tree must encode to the
/// same bytes: the hot paths stream, the tests and JSON oracle walk the
/// tree, and any drift between them would be a silent format fork.
#[test]
fn emit_agrees_with_value_tree_for_service_types() {
    fn check<T: Serialize>(value: &T) {
        let streamed = rrs_codec::to_vec(value);
        let tree = rrs_codec::to_vec(&value.to_value());
        assert_eq!(streamed, tree, "Emit and to_value disagree");
    }
    for record in wal_record_exemplars() {
        check(&record);
    }
    check(&Checkpoint::genesis(3));
    check(&Request::AddTenant { id: 2, spec: spec_for(2) });
    check(&Response::TickAck { epoch: 3, seqs: vec![11, 13] });
}

fn arrivals_strategy() -> impl Strategy<Value = Vec<(ColorId, u64)>> {
    proptest::collection::vec((0u32..4, 1u64..50), 0..5)
        .prop_map(|rows| rows.into_iter().map(|(c, n)| (ColorId(c), n)).collect())
}

fn submit_strategy() -> impl Strategy<Value = WalRecord> {
    let entries = proptest::collection::vec((0u64..9, arrivals_strategy()), 0..6);
    prop_oneof![
        (0u64..100, arrivals_strategy()).prop_map(|(tenant, arrivals)| WalRecord::Submit {
            tenant,
            arrivals
        }),
        entries.prop_map(|entries| WalRecord::SubmitBatch { entries }),
        Just(WalRecord::Tick),
    ]
}

proptest! {
    #[test]
    fn random_wal_records_round_trip_binary(record in submit_strategy()) {
        let bytes = frame::encode_value_with(&record, Codec::Binary).unwrap();
        let (back, consumed) = frame::decode_value::<WalRecord>(&bytes).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back, record);
    }

    /// Flip one bit anywhere in a binary WAL frame: the decoder must never
    /// hand back a *different* record (CRC or codec validation catches it).
    #[test]
    fn single_bit_flips_never_forge_a_binary_record(
        record in submit_strategy(),
        pos_seed in 0usize..usize::MAX,
        bit in 0u8..8,
    ) {
        let frame = frame::encode_value_with(&record, Codec::Binary).unwrap();
        let mut bent = frame.clone();
        let pos = pos_seed % bent.len();
        bent[pos] ^= 1 << bit;
        match frame::decode_value::<WalRecord>(&bent) {
            Ok((back, _)) => prop_assert_eq!(back, record, "flipped byte {} forged a record", pos),
            Err(FrameError::Corrupt) | Err(FrameError::Torn) => {}
        }
    }
}

/// Every proper prefix of a binary frame is torn — recovery keeps the
/// committed prefix and treats the tail as an interrupted write, exactly
/// as it always did for JSON frames.
#[test]
fn every_truncation_of_a_binary_frame_is_torn() {
    let record = WalRecord::SubmitBatch {
        entries: vec![(1, vec![(ColorId(1), 2)]), (4, vec![(ColorId(0), 7)])],
    };
    let frame = frame::encode_value_with(&record, Codec::Binary).unwrap();
    for cut in 0..frame.len() {
        match frame::decode_value::<WalRecord>(&frame[..cut]) {
            Err(FrameError::Torn) => {}
            other => panic!("cut at {cut}: expected Torn, got {other:?}"),
        }
    }
}

/// A binary frame followed by a JSON frame in one buffer scans in order —
/// the per-frame sniff is what makes mixed-format WAL segments work.
#[test]
fn scan_values_handles_interleaved_codecs() {
    let records = [
        WalRecord::Tick,
        WalRecord::Submit { tenant: 1, arrivals: vec![(ColorId(0), 2)] },
        WalRecord::Tick,
    ];
    let mut buf = Vec::new();
    for (i, record) in records.iter().enumerate() {
        let codec = if i % 2 == 0 { Codec::Binary } else { Codec::Json };
        buf.extend_from_slice(&frame::encode_value_with(record, codec).unwrap());
    }
    let (scanned, consumed, err) = frame::scan_values::<WalRecord>(&buf);
    assert_eq!(consumed, buf.len());
    assert!(err.is_none(), "{err:?}");
    assert_eq!(scanned, records);
}
