//! Seeded generators for uniform-variant instances.

use crate::problem::UniformInstance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random `[Δ | c_ℓ | D | D]` workload with skewed drop costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformWorkload {
    /// Uniform delay bound `D`.
    pub d: u64,
    /// Number of colors.
    pub ncolors: usize,
    /// Maximum drop cost (costs are drawn from `1..=max_cost`, geometrically
    /// skewed so a few colors are much more valuable).
    pub max_cost: u64,
    /// Number of blocks.
    pub blocks: usize,
    /// Probability a color is active in a block.
    pub activity: f64,
    /// Mean batch size as a fraction of `D` while active.
    pub load: f64,
}

impl Default for UniformWorkload {
    fn default() -> Self {
        UniformWorkload {
            d: 8,
            ncolors: 6,
            max_cost: 16,
            blocks: 128,
            activity: 0.6,
            load: 0.8,
        }
    }
}

impl UniformWorkload {
    /// Generates the instance for `seed`.
    pub fn generate(&self, seed: u64) -> UniformInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        // Geometric cost skew: halve the ceiling per rank (min 1), then
        // shuffle so the valuable colors land on random ids (otherwise a
        // round-robin static baseline accidentally covers exactly the most
        // valuable colors).
        let mut drop_costs: Vec<u64> = (0..self.ncolors)
            .map(|i| {
                let ceil = (self.max_cost >> i.min(8)).max(1);
                rng.gen_range(1..=ceil)
            })
            .collect();
        for i in (1..drop_costs.len()).rev() {
            let j = rng.gen_range(0..=i);
            drop_costs.swap(i, j);
        }
        let blocks = (0..self.blocks)
            .map(|_| {
                (0..self.ncolors as u32)
                    .filter_map(|c| {
                        if rng.gen::<f64>() < self.activity {
                            let mean = self.load * self.d as f64;
                            let count =
                                crate_poisson(&mut rng, mean).max(1);
                            Some((c, count))
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect();
        UniformInstance {
            d: self.d,
            drop_costs,
            blocks,
        }
    }
}

/// Minimal Poisson sampler (Knuth), local to avoid a cross-crate dependency
/// for one function.
fn crate_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_seeded_instances() {
        let g = UniformWorkload::default();
        let a = g.generate(3);
        let b = g.generate(3);
        assert_eq!(a, b);
        a.validate().unwrap();
        assert!(a.total_jobs() > 0);
        assert_ne!(a, g.generate(4));
    }

    #[test]
    fn costs_are_skewed() {
        let g = UniformWorkload {
            ncolors: 6,
            max_cost: 64,
            ..Default::default()
        };
        let inst = g.generate(1);
        assert!(inst.drop_costs.iter().all(|&c| c >= 1));
        // One rank has ceiling 2 and one has ceiling 64: after the shuffle
        // the *spread* persists even though positions are randomized.
        let min = inst.drop_costs.iter().min().unwrap();
        let max = inst.drop_costs.iter().max().unwrap();
        assert!(min <= &2);
        assert!(max > min, "skew survives the shuffle: {:?}", inst.drop_costs);
    }
}
