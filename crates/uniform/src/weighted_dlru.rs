//! The online algorithm for `[Δ | c_ℓ | D | D]`: ΔLRU with **cost-weighted
//! counters**.
//!
//! This is the SPAA 2006 caching reduction expressed in the vocabulary of the
//! supplied paper's ΔLRU: a color's counter accumulates *drop value*
//! (`c_ℓ ×` arrivals) rather than job count, wrapping at Δ — so a color earns
//! cache residency exactly when the value it would otherwise lose matches the
//! price of a reconfiguration, which is the Landlord rent argument. Because
//! the delay bound is uniform, all deadlines coincide and the deadline (EDF)
//! half of ΔLRU-EDF degenerates — recency alone suffices, which is precisely
//! why the uniform variant reduces to caching while the variable-delay
//! problem needs the full ΔLRU-EDF machinery.
//!
//! Slot policy per block: every cached (eligible, recency-ranked) color gets
//! one slot; spare slots are distributed greedily by marginal served value,
//! so large batches can claim several slots.

use crate::problem::{BlockPolicy, UniformInstance};
use std::collections::BTreeMap;

/// Per-color state.
#[derive(Debug, Clone, Default)]
struct WColor {
    cnt: u64,
    eligible: bool,
    last_wrap: Option<u64>, // block index of the last counter wrap
    timestamp: u64,         // last wrap visible at a block boundary
    cached: bool,
}

/// The weighted-ΔLRU block policy.
#[derive(Debug, Clone)]
pub struct WeightedDlru {
    delta: u64,
    d: u64,
    n: usize,
    drop_costs: Vec<u64>,
    colors: Vec<WColor>,
}

impl WeightedDlru {
    /// Creates the policy for `instance` with `n` slots and reconfiguration
    /// cost `delta`.
    pub fn new(instance: &UniformInstance, n: usize, delta: u64) -> Self {
        WeightedDlru {
            delta,
            d: instance.d,
            n,
            drop_costs: instance.drop_costs.clone(),
            colors: vec![WColor::default(); instance.ncolors()],
        }
    }

    /// Currently cached colors (for tests).
    pub fn cached_colors(&self) -> Vec<u32> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cached)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

impl BlockPolicy for WeightedDlru {
    fn name(&self) -> String {
        "Weighted-ΔLRU".into()
    }

    fn assign(&mut self, block: usize, arrivals: &[(u32, u64)]) -> Vec<(u32, u32)> {
        let block = block as u64;
        // Block boundary = the uniform drop phase: uncached eligible colors
        // become ineligible with a zeroed counter (mirroring the main crate's
        // drop-phase rule).
        for s in self.colors.iter_mut() {
            if s.eligible && !s.cached {
                s.eligible = false;
                s.cnt = 0;
            }
            // Timestamps become visible one block late, as in §3.1.1.
            if let Some(w) = s.last_wrap {
                if w < block {
                    s.timestamp = w + 1; // +1 so block 0 wraps beat the default 0
                }
            }
        }
        // Arrival phase: weighted counter updates.
        let mut pending: BTreeMap<u32, u64> = BTreeMap::new();
        for &(c, count) in arrivals {
            pending.insert(c, count);
            let s = &mut self.colors[c as usize];
            s.cnt += count * self.drop_costs[c as usize];
            if s.cnt >= self.delta {
                s.cnt %= self.delta;
                s.last_wrap = Some(block);
                s.eligible = true;
            }
        }
        // Cache the top-n eligible colors by recency (ties: keep cached, then
        // color order).
        let mut eligible: Vec<u32> = (0..self.colors.len() as u32)
            .filter(|&c| self.colors[c as usize].eligible)
            .collect();
        eligible.sort_by_key(|&c| {
            let s = &self.colors[c as usize];
            (std::cmp::Reverse(s.timestamp), !s.cached, c)
        });
        eligible.truncate(self.n);
        for (i, s) in self.colors.iter_mut().enumerate() {
            s.cached = eligible.contains(&(i as u32));
        }
        // Slots: one per cached color, then spare slots greedily by marginal
        // value over this block's pending work.
        let mut slots: BTreeMap<u32, u32> = eligible.iter().map(|&c| (c, 1)).collect();
        let mut remaining: BTreeMap<u32, u64> = pending
            .iter()
            .map(|(&c, &k)| {
                let assigned = u64::from(slots.get(&c).copied().unwrap_or(0)) * self.d;
                (c, k.saturating_sub(assigned))
            })
            .collect();
        let mut used: u64 = slots.values().map(|&s| u64::from(s)).sum();
        while used < self.n as u64 {
            // A spare slot is only taken when its marginal served value in
            // this very block covers Δ — it finances its own (potential)
            // reconfiguration, so spare slots can never cause thrashing.
            let best = remaining
                .iter()
                .map(|(&c, &k)| (k.min(self.d) * self.drop_costs[c as usize], c))
                .max_by_key(|&(v, c)| (v, std::cmp::Reverse(c)))
                .filter(|&(v, _)| v >= self.delta);
            let Some((_, c)) = best else { break };
            *slots.entry(c).or_insert(0) += 1;
            let k = remaining.get_mut(&c).expect("present");
            *k = k.saturating_sub(self.d);
            used += 1;
        }
        slots.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::run_block_policy;

    fn steady(ncolors: usize, blocks: usize, count: u64, cost: u64) -> UniformInstance {
        UniformInstance {
            d: 4,
            drop_costs: vec![cost; ncolors],
            blocks: (0..blocks)
                .map(|_| (0..ncolors as u32).map(|c| (c, count)).collect())
                .collect(),
        }
    }

    #[test]
    fn steady_traffic_is_served_after_warmup() {
        let inst = steady(2, 16, 4, 1);
        let mut p = WeightedDlru::new(&inst, 2, 8);
        let run = run_block_policy(&inst, &mut p, 2, 8).unwrap();
        // Warmup: each color needs Δ=8 accumulated value (two blocks of
        // 4 jobs × cost 1) to wrap, so block 0 drops; from block 1 on both
        // colors are cached and fully served.
        assert_eq!(run.drop_cost, 8, "only the warmup block drops: {run:?}");
        assert_eq!(run.reconfig_cost, 16, "each color cached once");
    }

    #[test]
    fn high_cost_colors_become_eligible_faster() {
        // Color 0: cost 1, 1 job/block (needs Δ=8 blocks to wrap).
        // Color 1: cost 8, 1 job/block (wraps immediately).
        let inst = UniformInstance {
            d: 4,
            drop_costs: vec![1, 8],
            blocks: (0..4).map(|_| vec![(0, 1), (1, 1)]).collect(),
        };
        let mut p = WeightedDlru::new(&inst, 1, 8);
        let run = run_block_policy(&inst, &mut p, 1, 8).unwrap();
        // Color 1 is served from block 0; color 0 never wraps (4 < 8).
        assert_eq!(run.drop_cost, 4, "four cheap drops only");
    }

    #[test]
    fn cheap_chatter_does_not_evict_expensive_residents() {
        // Expensive color 0 wraps early and keeps getting traffic; cheap
        // colors 1..3 chatter but each accumulates value slowly.
        let inst = UniformInstance {
            d: 4,
            drop_costs: vec![10, 1, 1, 1],
            blocks: (0..12)
                .map(|b| {
                    let mut v = vec![(0u32, 1u64)];
                    v.push((1 + (b % 3) as u32, 1));
                    v
                })
                .collect(),
        };
        let mut p = WeightedDlru::new(&inst, 1, 10);
        let run = run_block_policy(&inst, &mut p, 1, 10).unwrap();
        assert_eq!(p.cached_colors(), vec![0], "the valuable color holds the slot");
        // Drops: all cheap jobs (12) + color 0's pre-wrap block(s).
        assert!(run.drop_cost <= 12 + 10);
    }

    #[test]
    fn spare_slots_serve_large_batches() {
        let inst = UniformInstance {
            d: 4,
            drop_costs: vec![1],
            blocks: vec![vec![(0, 12)]; 4],
        };
        let mut p = WeightedDlru::new(&inst, 4, 2);
        let run = run_block_policy(&inst, &mut p, 4, 2).unwrap();
        // After the color wraps (block 0, 12 >= Δ=2), three slots serve all
        // 12 jobs per block.
        assert_eq!(run.dropped, 0, "{run:?}");
    }
}
