//! Offline oracles for the uniform variant: lower bounds and an exact
//! block-level DP.

use crate::problem::UniformInstance;
use rrs_core::{Error, Result};
use std::collections::HashMap;

/// Per-color lower bound: any schedule either configures color ℓ at least
/// once (≥ Δ) or drops all its jobs (≥ `c_ℓ × jobs_ℓ`).
pub fn per_color_bound(instance: &UniformInstance, delta: u64) -> u64 {
    let mut weight = vec![0u64; instance.ncolors()];
    for block in &instance.blocks {
        for &(c, k) in block {
            weight[c as usize] += k * instance.drop_costs[c as usize];
        }
    }
    weight.iter().map(|&w| w.min(delta) * u64::from(w > 0)).sum()
}

/// Capacity lower bound on the weighted drop cost: in each block at most
/// `n·D` jobs can execute (any colors, any reconfigurations), so at best the
/// `n·D` most valuable jobs survive; everything else is dropped.
pub fn capacity_drop_bound(instance: &UniformInstance, n: usize) -> u64 {
    let capacity = n as u64 * instance.d;
    let mut bound = 0u64;
    for block in &instance.blocks {
        // Serve the most valuable jobs first.
        let mut per_value: Vec<(u64, u64)> = block
            .iter()
            .map(|&(c, k)| (instance.drop_costs[c as usize], k))
            .collect();
        per_value.sort_unstable_by_key(|&(v, _)| std::cmp::Reverse(v));
        let mut left = capacity;
        let mut dropped_value = 0u64;
        for (value, count) in per_value {
            let served = count.min(left);
            left -= served;
            dropped_value += (count - served) * value;
        }
        bound += dropped_value;
    }
    bound
}

/// The best available lower bound.
pub fn block_lower_bound(instance: &UniformInstance, n: usize, delta: u64) -> u64 {
    per_color_bound(instance, delta).max(capacity_drop_bound(instance, n))
}

/// Configuration of the exact block-level DP.
#[derive(Debug, Clone, Copy)]
pub struct UniformOptConfig {
    /// Offline slots `m`.
    pub m: usize,
    /// Reconfiguration cost Δ.
    pub delta: u64,
    /// Frontier-size guard.
    pub max_states: usize,
}

impl UniformOptConfig {
    /// Defaults with a generous state guard.
    pub fn new(m: usize, delta: u64) -> Self {
        UniformOptConfig {
            m,
            delta,
            max_states: 500_000,
        }
    }
}

/// Exact optimal cost over **block-aligned** schedules: DP whose state is the
/// previous block's slot assignment (a multiset of colors of size ≤ m). Since
/// no pending state crosses block boundaries, this is a clean polynomial DP
/// in the number of assignments.
///
/// # Errors
/// Rejects `m == 0` or a tripped state guard.
pub fn optimal_uniform(instance: &UniformInstance, cfg: UniformOptConfig) -> Result<u64> {
    instance.validate()?;
    if cfg.m == 0 {
        return Err(Error::InvalidParameter("need m >= 1".into()));
    }
    let ncolors = instance.ncolors() as u32;
    // Assignments as sorted color multisets.
    let mut assignments: Vec<Vec<u32>> = vec![vec![]];
    fn rec(ncolors: u32, start: u32, left: usize, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if left == 0 {
            return;
        }
        for c in start..ncolors {
            cur.push(c);
            out.push(cur.clone());
            rec(ncolors, c, left - 1, cur, out);
            cur.pop();
        }
    }
    rec(ncolors, 0, cfg.m, &mut Vec::new(), &mut assignments);

    let gained = |old: &[u32], new: &[u32]| -> u64 {
        let mut g = 0;
        let mut i = 0;
        for &c in new {
            while i < old.len() && old[i] < c {
                i += 1;
            }
            if i < old.len() && old[i] == c {
                i += 1;
            } else {
                g += 1;
            }
        }
        g
    };

    let mut frontier: HashMap<Vec<u32>, u64> = HashMap::new();
    frontier.insert(vec![], 0);
    for block in &instance.blocks {
        let mut next: HashMap<Vec<u32>, u64> = HashMap::new();
        for (prev, &cost) in &frontier {
            for assignment in &assignments {
                let mut c2 = cost + gained(prev, assignment) * cfg.delta;
                for &(color, count) in block {
                    let slots = assignment.iter().filter(|&&a| a == color).count() as u64;
                    let served = count.min(slots * instance.d);
                    c2 += (count - served) * instance.drop_costs[color as usize];
                }
                match next.get_mut(assignment) {
                    Some(v) if *v <= c2 => {}
                    Some(v) => *v = c2,
                    None => {
                        next.insert(assignment.clone(), c2);
                    }
                }
            }
        }
        if next.len() > cfg.max_states {
            return Err(Error::InvalidParameter(format!(
                "uniform DP exceeded {} states",
                cfg.max_states
            )));
        }
        frontier = next;
    }
    frontier
        .values()
        .copied()
        .min()
        .ok_or_else(|| Error::InvalidParameter("empty frontier".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{run_block_policy, GreedyBlocks, StaticBlocks};
    use crate::weighted_dlru::WeightedDlru;

    fn simple() -> UniformInstance {
        UniformInstance {
            d: 4,
            drop_costs: vec![1, 5],
            blocks: vec![vec![(0, 4), (1, 2)], vec![(0, 4)], vec![(1, 6)]],
        }
    }

    #[test]
    fn lower_bounds_are_sound_vs_dp() {
        let i = simple();
        for m in 1..=2 {
            for delta in [1u64, 3, 8] {
                let opt = optimal_uniform(&i, UniformOptConfig::new(m, delta)).unwrap();
                let lb = block_lower_bound(&i, m, delta);
                assert!(lb <= opt, "m={m} Δ={delta}: lb {lb} > opt {opt}");
            }
        }
    }

    #[test]
    fn dp_beats_every_policy() {
        let i = simple();
        let m = 2;
        let delta = 3;
        let opt = optimal_uniform(&i, UniformOptConfig::new(m, delta)).unwrap();
        let mut s = StaticBlocks::spread(2, m);
        assert!(run_block_policy(&i, &mut s, m, delta).unwrap().total() >= opt);
        let mut g = GreedyBlocks::new(&i, m);
        assert!(run_block_policy(&i, &mut g, m, delta).unwrap().total() >= opt);
        let mut w = WeightedDlru::new(&i, m, delta);
        assert!(run_block_policy(&i, &mut w, m, delta).unwrap().total() >= opt);
    }

    #[test]
    fn dp_hand_checked() {
        // One color, one block, 4 jobs × cost 2 = value 8, Δ = 3: serve (3)
        // beats dropping (8).
        let i = UniformInstance {
            d: 4,
            drop_costs: vec![2],
            blocks: vec![vec![(0, 4)]],
        };
        assert_eq!(optimal_uniform(&i, UniformOptConfig::new(1, 3)).unwrap(), 3);
        // Δ = 10: dropping (8) beats serving (10).
        assert_eq!(optimal_uniform(&i, UniformOptConfig::new(1, 10)).unwrap(), 8);
    }

    #[test]
    fn capacity_bound_counts_block_overflow() {
        // 10 jobs of value 2 in one block, capacity 1×4: 6 must drop.
        let i = UniformInstance {
            d: 4,
            drop_costs: vec![2],
            blocks: vec![vec![(0, 10)]],
        };
        assert_eq!(capacity_drop_bound(&i, 1), 12);
        assert_eq!(capacity_drop_bound(&i, 3), 0);
    }

    #[test]
    fn per_color_bound_counts_cheap_colors_fully() {
        let i = simple();
        // Color 0: weight 8, min(Δ=100, 8) = 8; color 1: weight 40, min = 40.
        assert_eq!(per_color_bound(&i, 100), 48);
        assert_eq!(per_color_bound(&i, 3), 6);
    }

    #[test]
    fn random_consistency_weighted_dlru_vs_opt() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let ncolors = rng.gen_range(1..4);
            let inst = UniformInstance {
                d: 4,
                drop_costs: (0..ncolors).map(|_| rng.gen_range(1..6)).collect(),
                blocks: (0..rng.gen_range(2..6))
                    .map(|_| {
                        (0..ncolors as u32)
                            .flat_map(|c| {
                                if rng.gen_bool(0.7) {
                                    Some((c, rng.gen_range(1..8)))
                                } else {
                                    None
                                }
                            })
                            .collect()
                    })
                    .collect(),
            };
            let delta = rng.gen_range(1..6);
            let m = 1;
            let n = 4; // 4x augmentation for the online algorithm
            let opt = optimal_uniform(&inst, UniformOptConfig::new(m, delta)).unwrap();
            let mut w = WeightedDlru::new(&inst, n, delta);
            let online = run_block_policy(&inst, &mut w, n, delta).unwrap();
            // Resource-competitive shape: bounded multiple of the m=1 optimum.
            assert!(
                online.total() <= 8 * opt + 4 * delta * ncolors as u64,
                "online {} vs opt {opt} (Δ={delta})",
                online.total()
            );
        }
    }
}
