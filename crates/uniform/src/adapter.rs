//! Cross-model validation: running block-level policies on the round-level
//! engine.
//!
//! [`UniformInstance::to_round_trace`] encodes a uniform-variant instance as
//! an `rrs-core` trace (weighted colors, batched arrivals), and
//! [`BlockAdapter`] lifts any [`BlockPolicy`] into an engine [`Policy`] that
//! applies the block assignment at each block's first round and holds it for
//! the block. Because no pending state crosses block boundaries, the two
//! models must agree **exactly** on reconfiguration cost, weighted drop cost
//! and served-job count — which the tests here verify for every block policy
//! in the crate. This pins the hand-rolled block simulator to the
//! independently-tested round engine.

use crate::problem::{BlockPolicy, UniformInstance};
use rrs_core::prelude::*;

impl UniformInstance {
    /// Encodes the instance as a round-level trace: color ℓ gets delay bound
    /// `D` and drop cost `c_ℓ`; block `i`'s arrivals land at round `i·D`.
    pub fn to_round_trace(&self) -> Trace {
        let mut table = ColorTable::new();
        for &c in &self.drop_costs {
            table.push(ColorInfo::with_drop_cost(self.d, c));
        }
        let mut trace = Trace::new(table);
        for (i, block) in self.blocks.iter().enumerate() {
            let round = i as Round * self.d;
            for &(c, count) in block {
                trace.add(round, ColorId(c), count).expect("valid color");
            }
        }
        trace
    }
}

/// Lifts a [`BlockPolicy`] into a round-level engine [`Policy`].
pub struct BlockAdapter<P> {
    inner: P,
    d: u64,
    current: CacheTarget,
    next_block: usize,
}

impl<P: BlockPolicy> BlockAdapter<P> {
    /// Wraps `inner` for an instance with uniform delay bound `d`.
    pub fn new(inner: P, d: u64) -> Self {
        BlockAdapter {
            inner,
            d,
            current: CacheTarget::empty(),
            next_block: 0,
        }
    }
}

impl<P: BlockPolicy> Policy for BlockAdapter<P> {
    fn name(&self) -> String {
        format!("{}@rounds", self.inner.name())
    }

    fn on_arrival_phase(&mut self, round: Round, arrivals: &[(ColorId, u64)], _view: &EngineView) {
        if round.is_multiple_of(self.d) {
            let block = (round / self.d) as usize;
            // Feed skipped empty blocks so the inner policy's block counter
            // stays aligned (its boundary bookkeeping runs per block).
            while self.next_block < block {
                let assignment = self.inner.assign(self.next_block, &[]);
                self.current = to_target(&assignment);
                self.next_block += 1;
            }
            let raw: Vec<(u32, u64)> = arrivals.iter().map(|&(c, k)| (c.0, k)).collect();
            let assignment = self.inner.assign(block, &raw);
            self.current = to_target(&assignment);
            self.next_block = block + 1;
        }
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, _view: &EngineView) -> CacheTarget {
        self.current.clone()
    }
}

fn to_target(assignment: &[(u32, u32)]) -> CacheTarget {
    let mut t = CacheTarget::empty();
    for &(c, slots) in assignment {
        t.add(ColorId(c), slots);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::UniformWorkload;
    use crate::problem::{run_block_policy, GreedyBlocks, StaticBlocks};
    use crate::weighted_dlru::WeightedDlru;
    use rrs_core::engine::run_policy;

    fn workload(seed: u64) -> UniformInstance {
        UniformWorkload {
            d: 4,
            ncolors: 4,
            max_cost: 8,
            blocks: 24,
            activity: 0.7,
            load: 0.9,
        }
        .generate(seed)
    }

    #[test]
    fn round_trace_shape() {
        let inst = workload(1);
        let trace = inst.to_round_trace();
        assert_eq!(trace.total_jobs(), inst.total_jobs());
        assert!(trace.colors().iter().all(|(_, i)| i.delay_bound == 4));
        assert!(!trace.colors().unit_drop_costs() || inst.drop_costs.iter().all(|&c| c == 1));
        assert_ne!(trace.batch_class(), BatchClass::General);
    }

    /// The core agreement property, checked for one policy constructor.
    fn agree<P: BlockPolicy + Clone>(inst: &UniformInstance, policy: P, n: usize, delta: u64) {
        let block_run = run_block_policy(inst, &mut policy.clone(), n, delta).unwrap();
        let trace = inst.to_round_trace();
        let mut adapted = BlockAdapter::new(policy, inst.d);
        let round_run = run_policy(&trace, &mut adapted, n, delta).unwrap();
        assert_eq!(
            round_run.cost.reconfig, block_run.reconfig_cost,
            "reconfiguration cost agrees"
        );
        assert_eq!(round_run.cost.drop, block_run.drop_cost, "drop cost agrees");
        assert_eq!(round_run.executed, block_run.served, "served count agrees");
    }

    #[test]
    fn static_blocks_agree_across_models() {
        for seed in 0..5 {
            let inst = workload(seed);
            agree(&inst, StaticBlocks::spread(inst.ncolors(), 3), 3, 5);
        }
    }

    #[test]
    fn greedy_blocks_agree_across_models() {
        for seed in 0..5 {
            let inst = workload(seed);
            agree(&inst, GreedyBlocks::new(&inst, 3), 3, 5);
        }
    }

    #[test]
    fn weighted_dlru_agrees_across_models() {
        for seed in 0..5 {
            let inst = workload(seed);
            agree(&inst, WeightedDlru::new(&inst, 4, 6), 4, 6);
        }
    }
}
