//! The Sleator–Tarjan paging special case.
//!
//! The supplied paper (Related Work) observes that classic disk paging is the
//! special case of reconfigurable resource scheduling with unit delay bound,
//! unit reconfiguration cost, infinite drop cost, and single-job requests.
//! This module makes that embedding concrete: a [`PagingInstance`] converts
//! to an `rrs-core` trace ([`PagingInstance::to_rrs_trace`]), and the
//! [`PagingLru`] engine policy's reconfiguration count provably equals LRU's
//! fault count (tested), closing the loop between the two models. The classic
//! `k/(k−h+1)` resource-augmented competitiveness of LRU is measured by
//! experiment E16.

use crate::filecache::{belady_faults, run_policy as run_cache, LruCache, WeightedCachingInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrs_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A paging instance: a sequence of page requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagingInstance {
    /// Number of distinct pages.
    pub npages: usize,
    /// The request sequence.
    pub requests: Vec<u32>,
}

impl PagingInstance {
    /// Creates an instance.
    pub fn new(npages: usize, requests: Vec<u32>) -> Self {
        PagingInstance { npages, requests }
    }

    /// A seeded request sequence with working-set locality: at each step,
    /// with probability `locality` request a page from the current window of
    /// `ws` pages, otherwise jump the window.
    pub fn with_locality(
        npages: usize,
        len: usize,
        ws: usize,
        locality: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut base = 0usize;
        let ws = ws.clamp(1, npages);
        let requests = (0..len)
            .map(|_| {
                if rng.gen::<f64>() >= locality {
                    base = rng.gen_range(0..npages);
                }
                ((base + rng.gen_range(0..ws)) % npages) as u32
            })
            .collect();
        PagingInstance { npages, requests }
    }

    /// The cyclic adversary that forces LRU to fault on every request with a
    /// cache one page too small.
    pub fn cyclic(npages: usize, len: usize) -> Self {
        PagingInstance {
            npages,
            requests: (0..len).map(|i| (i % npages) as u32).collect(),
        }
    }

    /// As a unit-cost weighted-caching instance.
    pub fn to_caching(&self) -> WeightedCachingInstance {
        WeightedCachingInstance::unit(self.npages, self.requests.clone())
            .expect("paging instances are always valid")
    }

    /// Embeds the instance into the reconfigurable resource scheduling model
    /// (paper Related Work): page `p` ↦ color `p` with `D = 1`; the request
    /// at position `t` ↦ one unit job of that color at round `t`.
    pub fn to_rrs_trace(&self) -> Trace {
        let mut trace = Trace::new(ColorTable::from_delay_bounds(&vec![1; self.npages]));
        for (t, &p) in self.requests.iter().enumerate() {
            trace.add(t as Round, ColorId(p), 1).expect("valid page");
        }
        trace
    }
}

/// LRU fault count with cache size `k`.
pub fn lru_paging_faults(instance: &PagingInstance, k: usize) -> u64 {
    run_cache(&instance.to_caching(), &mut LruCache::new(), k)
}

/// Belady (offline optimal) fault count with cache size `h`.
pub fn opt_paging_faults(instance: &PagingInstance, h: usize) -> u64 {
    belady_faults(&instance.to_caching(), h)
}

/// An `rrs-core` engine policy realizing demand-paging LRU in the scheduling
/// model: on each request (a single D=1 job), cache the requested color,
/// evicting the least recently requested one when all `n` locations are
/// occupied. Its reconfiguration-event count equals LRU's fault count, and it
/// never drops a job — the embedding the paper's related-work section claims.
#[derive(Debug, Clone, Default)]
pub struct PagingLru {
    stamp: u64,
    last_used: HashMap<ColorId, u64>,
    cached: Vec<ColorId>,
    current: Option<ColorId>,
}

impl PagingLru {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for PagingLru {
    fn name(&self) -> String {
        "PagingLRU".into()
    }

    fn on_arrival_phase(&mut self, _round: Round, arrivals: &[(ColorId, u64)], _view: &EngineView) {
        debug_assert!(arrivals.len() <= 1, "paging requests are single jobs");
        self.current = arrivals.first().map(|&(c, _)| c);
        if let Some(c) = self.current {
            self.stamp += 1;
            self.last_used.insert(c, self.stamp);
        }
    }

    fn reconfigure(&mut self, _round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        if let Some(c) = self.current {
            if !self.cached.contains(&c) {
                if self.cached.len() == view.n {
                    let (idx, _) = self
                        .cached
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, c)| self.last_used.get(c).copied().unwrap_or(0))
                        .expect("cache is full, hence nonempty");
                    self.cached.remove(idx);
                }
                self.cached.push(c);
            }
        }
        CacheTarget::singles(self.cached.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::engine::run_policy;

    #[test]
    fn cyclic_thrashes_lru() {
        let inst = PagingInstance::cyclic(3, 12);
        assert_eq!(lru_paging_faults(&inst, 2), 12);
        assert!(opt_paging_faults(&inst, 2) <= 7);
    }

    #[test]
    fn locality_generator_is_seeded_and_local() {
        let a = PagingInstance::with_locality(64, 500, 4, 0.9, 1);
        let b = PagingInstance::with_locality(64, 500, 4, 0.9, 1);
        assert_eq!(a, b);
        // With high locality a small cache already hits a lot.
        let faults = lru_paging_faults(&a, 8);
        assert!(faults < 250, "faults {faults}");
    }

    #[test]
    fn rrs_embedding_matches_lru_fault_count() {
        for seed in 0..3 {
            let inst = PagingInstance::with_locality(10, 200, 3, 0.8, seed);
            let trace = inst.to_rrs_trace();
            let k = 4;
            let mut policy = PagingLru::new();
            // Δ = 1 (unit reconfiguration cost), k locations.
            let r = run_policy(&trace, &mut policy, k, 1).unwrap();
            assert_eq!(r.cost.drop, 0, "demand paging never drops");
            assert_eq!(
                r.reconfig_events,
                lru_paging_faults(&inst, k),
                "seed {seed}: the embedding preserves the fault count"
            );
        }
    }

    #[test]
    fn sleator_tarjan_bound_shape() {
        // LRU(k) / OPT(h) <= k/(k-h+1) on every sequence; check on the cyclic
        // adversary, where the bound is tight-ish.
        let inst = PagingInstance::cyclic(9, 360);
        for (k, h) in [(8, 8), (8, 5), (8, 2)] {
            let lru = lru_paging_faults(&inst, k) as f64;
            let opt = opt_paging_faults(&inst, h) as f64;
            let bound = k as f64 / (k - h + 1) as f64;
            assert!(
                lru / opt.max(1.0) <= bound + 1e-9,
                "k={k} h={h}: {lru}/{opt} > {bound}"
            );
        }
    }

    #[test]
    fn trace_embedding_shape() {
        let inst = PagingInstance::new(3, vec![0, 1, 2, 0]);
        let t = inst.to_rrs_trace();
        assert_eq!(t.total_jobs(), 4);
        assert_eq!(t.colors().len(), 3);
        assert!(t.colors().iter().all(|(_, i)| i.delay_bound == 1));
        assert_eq!(t.horizon(), 4);
    }
}
