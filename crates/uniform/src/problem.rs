//! The block-level model of `[Δ | c_ℓ | D | D]`.
//!
//! With a uniform delay bound `D` and batched arrivals, every job arriving at
//! the start of block `i` (rounds `[iD, (i+1)D)`) expires exactly at the
//! block's end — so no pending state crosses block boundaries, and a resource
//! serving one color for a whole block executes exactly `min(D, pending)` of
//! its jobs. We therefore simulate at block granularity: a policy assigns
//! *slots* (resources) to colors once per block, pays Δ per slot that changes
//! color, and pays `c_ℓ` per unserved color-ℓ job at the block's end.
//!
//! Block-aligned schedules lose at most a constant factor against schedules
//! that reconfigure mid-block (a resource serving two colors within one block
//! can be split into two block-aligned resources with the same
//! reconfiguration count — the standard normalization), so block-level
//! competitive measurements carry over to the round model up to constants.

use rrs_core::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A `[Δ | c_ℓ | D | D]` instance at block granularity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformInstance {
    /// The uniform delay bound `D` (block length in rounds).
    pub d: u64,
    /// Per-color drop costs `c_ℓ` (positive).
    pub drop_costs: Vec<u64>,
    /// Arrivals per block: `(color, count)` pairs, color-sorted, at the
    /// block's first round.
    pub blocks: Vec<Vec<(u32, u64)>>,
}

impl UniformInstance {
    /// Validates delay bound, costs and color references.
    pub fn validate(&self) -> Result<()> {
        if self.d == 0 {
            return Err(Error::InvalidParameter("D must be positive".into()));
        }
        if self.drop_costs.contains(&0) {
            return Err(Error::InvalidParameter("drop costs must be positive".into()));
        }
        for (i, block) in self.blocks.iter().enumerate() {
            for &(c, _) in block {
                if c as usize >= self.drop_costs.len() {
                    return Err(Error::InvalidParameter(format!(
                        "block {i} references unknown color {c}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of colors.
    pub fn ncolors(&self) -> usize {
        self.drop_costs.len()
    }

    /// Total job count.
    pub fn total_jobs(&self) -> u64 {
        self.blocks
            .iter()
            .flat_map(|b| b.iter().map(|&(_, k)| k))
            .sum()
    }

    /// Total drop value if nothing were ever served.
    pub fn total_weight(&self) -> u64 {
        self.blocks
            .iter()
            .flat_map(|b| b.iter().map(|&(c, k)| self.drop_costs[c as usize] * k))
            .sum()
    }
}

/// A block-level online policy: assigns slots to colors at each block start.
///
/// `Send` mirrors the bound on [`rrs_core::Policy`] (which
/// [`crate::BlockAdapter`] implements): block policies are plain data and may
/// be moved into worker threads.
pub trait BlockPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> String;
    /// Returns the slot assignment for `block` given its arrivals: a
    /// color-sorted list of `(color, slots)` with total slots ≤ n. The policy
    /// sees only the current block's arrivals (plus its own memory) — it is
    /// online.
    fn assign(&mut self, block: usize, arrivals: &[(u32, u64)]) -> Vec<(u32, u32)>;
}

/// Outcome of a block-level run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformRun {
    /// Total reconfiguration cost (Δ × slot recolorings).
    pub reconfig_cost: u64,
    /// Total weighted drop cost.
    pub drop_cost: u64,
    /// Jobs served.
    pub served: u64,
    /// Jobs dropped.
    pub dropped: u64,
}

impl UniformRun {
    /// Total cost.
    pub fn total(&self) -> u64 {
        self.reconfig_cost + self.drop_cost
    }
}

/// Runs `policy` with `n` slots and reconfiguration cost `delta`.
pub fn run_block_policy(
    instance: &UniformInstance,
    policy: &mut dyn BlockPolicy,
    n: usize,
    delta: u64,
) -> Result<UniformRun> {
    instance.validate()?;
    if n == 0 {
        return Err(Error::InvalidParameter("need at least one slot".into()));
    }
    let mut prev: BTreeMap<u32, u32> = BTreeMap::new();
    let mut run = UniformRun {
        reconfig_cost: 0,
        drop_cost: 0,
        served: 0,
        dropped: 0,
    };
    for (i, block) in instance.blocks.iter().enumerate() {
        let assignment = policy.assign(i, block);
        let total_slots: u64 = assignment.iter().map(|&(_, s)| u64::from(s)).sum();
        if total_slots > n as u64 {
            return Err(Error::CacheOverflow {
                round: i as u64 * instance.d,
                requested: total_slots as usize,
                available: n,
            });
        }
        // Reconfiguration: slots gained per color.
        let next: BTreeMap<u32, u32> = assignment.iter().copied().collect();
        for (&c, &slots) in &next {
            let had = prev.get(&c).copied().unwrap_or(0);
            if slots > had {
                run.reconfig_cost += u64::from(slots - had) * delta;
            }
        }
        // Service: each slot serves up to D jobs of its color within the block.
        for &(c, count) in block {
            let slots = next.get(&c).copied().unwrap_or(0);
            let capacity = u64::from(slots) * instance.d;
            let served = count.min(capacity);
            run.served += served;
            let dropped = count - served;
            run.dropped += dropped;
            run.drop_cost += dropped * instance.drop_costs[c as usize];
        }
        prev = next;
    }
    Ok(run)
}

/// A static block policy (fixed assignment forever) — baseline.
#[derive(Debug, Clone)]
pub struct StaticBlocks {
    assignment: Vec<(u32, u32)>,
}

impl StaticBlocks {
    /// Spreads `n` slots round-robin over all colors.
    pub fn spread(ncolors: usize, n: usize) -> Self {
        let mut per: BTreeMap<u32, u32> = BTreeMap::new();
        if ncolors > 0 {
            for slot in 0..n {
                *per.entry((slot % ncolors) as u32).or_insert(0) += 1;
            }
        }
        StaticBlocks {
            assignment: per.into_iter().collect(),
        }
    }
}

impl BlockPolicy for StaticBlocks {
    fn name(&self) -> String {
        "StaticBlocks".into()
    }
    fn assign(&mut self, _block: usize, _arrivals: &[(u32, u64)]) -> Vec<(u32, u32)> {
        self.assignment.clone()
    }
}

/// A fully greedy block policy: every block, allocate slots to maximize this
/// block's served value, ignoring reconfiguration costs — the thrashing
/// baseline.
#[derive(Debug, Clone, Default)]
pub struct GreedyBlocks {
    n: usize,
    d: u64,
    drop_costs: Vec<u64>,
}

impl GreedyBlocks {
    /// Creates the greedy policy for an instance's parameters.
    pub fn new(instance: &UniformInstance, n: usize) -> Self {
        GreedyBlocks {
            n,
            d: instance.d,
            drop_costs: instance.drop_costs.clone(),
        }
    }
}

impl BlockPolicy for GreedyBlocks {
    fn name(&self) -> String {
        "GreedyBlocks".into()
    }
    fn assign(&mut self, _block: usize, arrivals: &[(u32, u64)]) -> Vec<(u32, u32)> {
        // Marginal value of the j-th slot for color c with count k:
        // min(k - j·D, D) · c_cost. Allocate n slots greedily.
        let mut remaining: BTreeMap<u32, u64> = arrivals.iter().copied().collect();
        let mut out: BTreeMap<u32, u32> = BTreeMap::new();
        for _ in 0..self.n {
            let best = remaining
                .iter()
                .map(|(&c, &k)| (k.min(self.d) * self.drop_costs[c as usize], c))
                .max_by_key(|&(v, c)| (v, std::cmp::Reverse(c)))
                .filter(|&(v, _)| v > 0);
            let Some((_, c)) = best else { break };
            *out.entry(c).or_insert(0) += 1;
            let k = remaining.get_mut(&c).expect("present");
            *k = k.saturating_sub(self.d);
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_instance() -> UniformInstance {
        UniformInstance {
            d: 4,
            drop_costs: vec![1, 5],
            blocks: vec![
                vec![(0, 4), (1, 2)],
                vec![(0, 4)],
                vec![(1, 6)],
            ],
        }
    }

    #[test]
    fn validation_catches_errors() {
        let mut i = simple_instance();
        i.validate().unwrap();
        i.d = 0;
        assert!(i.validate().is_err());
        let mut i = simple_instance();
        i.drop_costs[0] = 0;
        assert!(i.validate().is_err());
        let mut i = simple_instance();
        i.blocks[0].push((9, 1));
        assert!(i.validate().is_err());
    }

    #[test]
    fn totals() {
        let i = simple_instance();
        assert_eq!(i.total_jobs(), 16);
        assert_eq!(i.total_weight(), 4 + 10 + 4 + 30);
    }

    #[test]
    fn static_policy_costs() {
        let i = simple_instance();
        let mut p = StaticBlocks::spread(2, 2);
        let run = run_block_policy(&i, &mut p, 2, 3).unwrap();
        // Slots: one per color, configured once: reconfig 2Δ = 6.
        assert_eq!(run.reconfig_cost, 6);
        // Block 0: c0 serves 4/4, c1 serves 2/2. Block 1: c0 4/4. Block 2:
        // c1 serves 4 of 6, drops 2 at cost 5 each.
        assert_eq!(run.drop_cost, 10);
        assert_eq!(run.served, 14);
        assert_eq!(run.dropped, 2);
    }

    #[test]
    fn greedy_prefers_valuable_colors() {
        let i = UniformInstance {
            d: 4,
            drop_costs: vec![1, 10],
            blocks: vec![vec![(0, 4), (1, 4)]],
        };
        let mut p = GreedyBlocks::new(&i, 1);
        let run = run_block_policy(&i, &mut p, 1, 1).unwrap();
        // One slot: serve color 1 (value 40), drop color 0 (cost 4).
        assert_eq!(run.drop_cost, 4);
    }

    #[test]
    fn greedy_gives_multiple_slots_to_big_batches() {
        let i = UniformInstance {
            d: 4,
            drop_costs: vec![1, 1],
            blocks: vec![vec![(0, 8), (1, 2)]],
        };
        let mut p = GreedyBlocks::new(&i, 3);
        let run = run_block_policy(&i, &mut p, 3, 1).unwrap();
        assert_eq!(run.dropped, 0, "2 slots for c0's 8 jobs, 1 for c1");
    }

    #[test]
    fn overflow_rejected() {
        let i = simple_instance();
        struct Greedy9;
        impl BlockPolicy for Greedy9 {
            fn name(&self) -> String {
                "g9".into()
            }
            fn assign(&mut self, _b: usize, _a: &[(u32, u64)]) -> Vec<(u32, u32)> {
                vec![(0, 9)]
            }
        }
        assert!(run_block_policy(&i, &mut Greedy9, 2, 1).is_err());
    }

    #[test]
    fn keeping_a_slot_is_free() {
        let i = UniformInstance {
            d: 2,
            drop_costs: vec![1],
            blocks: vec![vec![(0, 2)]; 10],
        };
        let mut p = StaticBlocks::spread(1, 1);
        let run = run_block_policy(&i, &mut p, 1, 7).unwrap();
        assert_eq!(run.reconfig_cost, 7, "one configuration, held for 10 blocks");
        assert_eq!(run.drop_cost, 0);
    }
}
