//! # rrs-uniform — the `[Δ | c_ℓ | D | D]` variant and its caching substrate
//!
//! The paper's prior work (reference [14], *Reconfigurable resource
//! scheduling*, SPAA 2006 — the class-introducing companion of the supplied
//! text) solves the variant with a **uniform delay bound** `D` and
//! **per-color drop costs** `c_ℓ` by reducing it to a *file caching* problem.
//! This crate reproduces that layer:
//!
//! * [`filecache`] — the weighted-caching substrate: the classic paging /
//!   weighted-caching model, Young's **Landlord** algorithm, LRU/FIFO
//!   baselines, Belady's offline optimum for the unweighted case and an exact
//!   DP for the weighted case;
//! * [`paging`] — the Sleator–Tarjan special case the supplied paper calls
//!   out in its related work (unit delay bound, unit reconfiguration cost,
//!   infinite drop cost, single-job requests), with the classic
//!   `k/(k−h+1)`-competitiveness experiment;
//! * [`problem`] — the block-level model of `[Δ | c_ℓ | D | D]`: with a
//!   uniform delay bound, rounds collapse into *blocks* of `D` rounds, and a
//!   resource serving one color for a whole block executes exactly `D` of its
//!   jobs — which is why the deadline aspect vanishes and caching machinery
//!   alone suffices (exactly the structural fact that makes the
//!   variable-delay-bound problem of the main crates strictly harder);
//! * [`weighted_dlru`] — the online algorithm: ΔLRU with cost-weighted
//!   counters (a color becomes eligible when the *drop value* it has
//!   accumulated reaches Δ), which is the Landlord idea expressed in the
//!   ΔLRU vocabulary of the main paper;
//! * [`offline`] — per-block lower bounds and an exact block-level DP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod filecache;
pub mod generator;
pub mod offline;
pub mod paging;
pub mod problem;
pub mod weighted_dlru;

pub use adapter::BlockAdapter;
pub use filecache::{Belady, CachePolicy, FifoCache, Landlord, LruCache, MarkingCache, WeightedCachingInstance};
pub use generator::UniformWorkload;
pub use offline::{block_lower_bound, optimal_uniform, UniformOptConfig};
pub use paging::{lru_paging_faults, PagingInstance};
pub use problem::{UniformInstance, UniformRun};
pub use weighted_dlru::WeightedDlru;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::filecache::{Belady, CachePolicy, Landlord, LruCache, WeightedCachingInstance};
    pub use crate::offline::{block_lower_bound, optimal_uniform};
    pub use crate::paging::PagingInstance;
    pub use crate::problem::{UniformInstance, UniformRun};
    pub use crate::generator::UniformWorkload;
    pub use crate::weighted_dlru::WeightedDlru;
}
