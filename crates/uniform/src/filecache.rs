//! The file/weighted caching substrate.
//!
//! A cache holds up to `k` unit-size files. A request for file `f` costs
//! nothing if `f` is cached; otherwise the algorithm must fetch `f` at cost
//! `cost(f)` (evicting as needed). This is the *weighted caching* model —
//! the reduction target of the SPAA 2006 uniform-delay-bound variant, and
//! (with unit costs) the classic paging problem of Sleator and Tarjan.
//!
//! Implemented policies:
//! * [`Landlord`] — Young's credit-based algorithm, `k/(k−h+1)`-competitive
//!   against an `h`-file optimum;
//! * [`LruCache`] and [`FifoCache`] — the classic marking-family baselines
//!   (cost-oblivious; competitive for unit costs only);
//! * [`Belady`] — the offline optimum for unit costs (furthest-in-future);
//! * [`optimal_weighted`] — an exact DP for small weighted instances.

use rrs_core::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A file id.
pub type FileId = u32;

/// A weighted caching instance: a request sequence plus per-file fetch costs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedCachingInstance {
    /// Fetch cost per file (indexed by file id); length = number of files.
    pub costs: Vec<u64>,
    /// The request sequence.
    pub requests: Vec<FileId>,
}

impl WeightedCachingInstance {
    /// Creates an instance, validating that every request names a known file
    /// and every cost is positive.
    pub fn new(costs: Vec<u64>, requests: Vec<FileId>) -> Result<Self> {
        if costs.contains(&0) {
            return Err(Error::InvalidParameter("file costs must be positive".into()));
        }
        if let Some(&r) = requests.iter().find(|&&r| r as usize >= costs.len()) {
            return Err(Error::InvalidParameter(format!("request for unknown file {r}")));
        }
        Ok(WeightedCachingInstance { costs, requests })
    }

    /// Unit-cost (classic paging) instance.
    pub fn unit(nfiles: usize, requests: Vec<FileId>) -> Result<Self> {
        Self::new(vec![1; nfiles], requests)
    }

    /// Number of distinct files.
    pub fn nfiles(&self) -> usize {
        self.costs.len()
    }
}

/// An online caching policy: decides evictions; the driver charges the costs.
pub trait CachePolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;
    /// Called on every request. When `need_eviction` is true (a miss with a
    /// full cache) the policy must return a currently-cached victim; the
    /// driver handles all insertion bookkeeping. `cached` is the cache
    /// content before the request is served.
    fn on_request(
        &mut self,
        file: FileId,
        hit: bool,
        cached: &BTreeSet<FileId>,
        need_eviction: bool,
    ) -> Option<FileId>;
}

/// Runs `policy` with cache size `k` over `instance`; returns the total fetch
/// cost.
pub fn run_policy(
    instance: &WeightedCachingInstance,
    policy: &mut dyn CachePolicy,
    k: usize,
) -> u64 {
    assert!(k > 0, "cache size must be positive");
    let mut cached: BTreeSet<FileId> = BTreeSet::new();
    let mut cost = 0u64;
    for &f in &instance.requests {
        let hit = cached.contains(&f);
        if hit {
            policy.on_request(f, true, &cached, false);
            continue;
        }
        cost += instance.costs[f as usize];
        if cached.len() == k {
            let victim = policy
                .on_request(f, false, &cached, true)
                .expect("policy must name a victim when the cache is full");
            assert!(cached.remove(&victim), "victim must be cached");
        } else {
            policy.on_request(f, false, &cached, false);
        }
        cached.insert(f);
    }
    cost
}

/// Young's Landlord algorithm (unit sizes): every cached file holds *credit*;
/// on a miss with a full cache, all credits are decreased by the minimum
/// credit and a zero-credit file is evicted; a fetched file starts with credit
/// equal to its cost; on a hit the credit is restored to the cost.
#[derive(Debug, Clone)]
pub struct Landlord {
    costs: Vec<u64>,
    /// Fixed-point credits (per-file), scaled by 1 to stay integral: we use
    /// u64 credits and subtract exact minima, which keeps everything integer
    /// for integer costs.
    credit: HashMap<FileId, u64>,
}

impl Landlord {
    /// Creates Landlord for the given per-file costs.
    pub fn new(costs: &[u64]) -> Self {
        Landlord {
            costs: costs.to_vec(),
            credit: HashMap::new(),
        }
    }
}

impl CachePolicy for Landlord {
    fn name(&self) -> &'static str {
        "Landlord"
    }

    fn on_request(
        &mut self,
        file: FileId,
        hit: bool,
        cached: &BTreeSet<FileId>,
        need_eviction: bool,
    ) -> Option<FileId> {
        if hit {
            // Restore credit (the "reset to full rent" variant).
            self.credit.insert(file, self.costs[file as usize]);
            return None;
        }
        let mut victim = None;
        if need_eviction {
            // Decay every cached file's credit by the minimum, evict a zero.
            let min = cached
                .iter()
                .map(|f| self.credit[f])
                .min()
                .expect("nonempty cache");
            for f in cached {
                *self.credit.get_mut(f).expect("cached files have credit") -= min;
            }
            // Deterministic tie-break: smallest id among zero-credit files.
            victim = cached.iter().copied().find(|f| self.credit[f] == 0);
            if let Some(v) = victim {
                self.credit.remove(&v);
            }
        }
        self.credit.insert(file, self.costs[file as usize]);
        victim
    }
}

/// Least-recently-used (cost-oblivious).
#[derive(Debug, Clone, Default)]
pub struct LruCache {
    stamp: u64,
    last_used: HashMap<FileId, u64>,
}

impl LruCache {
    /// Creates an LRU policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CachePolicy for LruCache {
    fn name(&self) -> &'static str {
        "LRU"
    }
    fn on_request(
        &mut self,
        file: FileId,
        hit: bool,
        cached: &BTreeSet<FileId>,
        need_eviction: bool,
    ) -> Option<FileId> {
        self.stamp += 1;
        self.last_used.insert(file, self.stamp);
        if hit || !need_eviction {
            return None;
        }
        let victim = cached
            .iter()
            .copied()
            .min_by_key(|f| self.last_used.get(f).copied().unwrap_or(0));
        if let Some(v) = victim {
            self.last_used.remove(&v);
        }
        victim
    }
}

/// First-in-first-out (cost-oblivious).
#[derive(Debug, Clone, Default)]
pub struct FifoCache {
    queue: VecDeque<FileId>,
}

impl FifoCache {
    /// Creates a FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CachePolicy for FifoCache {
    fn name(&self) -> &'static str {
        "FIFO"
    }
    fn on_request(
        &mut self,
        file: FileId,
        hit: bool,
        _cached: &BTreeSet<FileId>,
        need_eviction: bool,
    ) -> Option<FileId> {
        if hit {
            return None;
        }
        let victim = if need_eviction {
            self.queue.pop_front()
        } else {
            None
        };
        self.queue.push_back(file);
        victim
    }
}

/// The randomized Marking algorithm (Fiat et al.): on a hit, mark; on a miss
/// when every cached file is marked, unmark all (a new *phase*); evict a
/// uniformly random unmarked file. `2·H_k`-competitive for unit costs — the
/// classic randomized counterpart of LRU, included as a baseline for the
/// paging experiments.
#[derive(Debug, Clone)]
pub struct MarkingCache {
    rng: rand::rngs::StdRng,
    marked: std::collections::HashSet<FileId>,
}

impl MarkingCache {
    /// Creates the policy with a seed (determinism for experiments).
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng;
        MarkingCache {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            marked: Default::default(),
        }
    }
}

impl CachePolicy for MarkingCache {
    fn name(&self) -> &'static str {
        "Marking"
    }
    fn on_request(
        &mut self,
        file: FileId,
        hit: bool,
        cached: &BTreeSet<FileId>,
        need_eviction: bool,
    ) -> Option<FileId> {
        use rand::Rng;
        let mut victim = None;
        if !hit && need_eviction {
            let mut unmarked: Vec<FileId> = cached
                .iter()
                .copied()
                .filter(|f| !self.marked.contains(f))
                .collect();
            if unmarked.is_empty() {
                // Phase boundary: unmark everything (except the new request).
                self.marked.clear();
                unmarked = cached.iter().copied().collect();
            }
            let pick = self.rng.gen_range(0..unmarked.len());
            victim = Some(unmarked[pick]);
            self.marked.remove(&unmarked[pick]);
        }
        self.marked.insert(file);
        victim
    }
}

/// Belady's offline optimum for **unit** costs: evict the file whose next use
/// is furthest in the future. Returns the number of faults.
#[derive(Debug, Clone)]
pub struct Belady;

/// Computes Belady's optimal fault count for a unit-cost instance.
pub fn belady_faults(instance: &WeightedCachingInstance, k: usize) -> u64 {
    assert!(k > 0);
    // Precompute next-use indices.
    let n = instance.requests.len();
    let mut next_use = vec![usize::MAX; n];
    let mut last_seen: HashMap<FileId, usize> = HashMap::new();
    for i in (0..n).rev() {
        let f = instance.requests[i];
        next_use[i] = last_seen.get(&f).copied().unwrap_or(usize::MAX);
        last_seen.insert(f, i);
    }
    let mut cached: HashMap<FileId, usize> = HashMap::new(); // file -> next use
    let mut faults = 0;
    for (i, &f) in instance.requests.iter().enumerate() {
        if let std::collections::hash_map::Entry::Occupied(mut e) = cached.entry(f) {
            e.insert(next_use[i]);
            continue;
        }
        faults += 1;
        if cached.len() == k {
            let (&victim, _) = cached
                .iter()
                .max_by_key(|&(f, &nu)| (nu, *f))
                .expect("nonempty");
            cached.remove(&victim);
        }
        cached.insert(f, next_use[i]);
    }
    faults
}

/// Exact optimal cost for small **weighted** instances, by DP over cache
/// contents (states: subsets of files of size ≤ k).
///
/// # Errors
/// Rejects instances with more than 12 files (state-space guard).
pub fn optimal_weighted(instance: &WeightedCachingInstance, k: usize) -> Result<u64> {
    let nfiles = instance.nfiles();
    if nfiles > 12 {
        return Err(Error::InvalidParameter(
            "weighted-caching DP caps at 12 files".into(),
        ));
    }
    // State: bitmask of cached files. Requests must hit the requested file,
    // so after serving request f, every reachable state contains f.
    let mut frontier: HashMap<u16, u64> = HashMap::new();
    frontier.insert(0, 0);
    for &f in &instance.requests {
        let fbit = 1u16 << f;
        let mut next: HashMap<u16, u64> = HashMap::new();
        for (&mask, &cost) in &frontier {
            if mask & fbit != 0 {
                // Hit: free.
                merge_min(&mut next, mask, cost);
                continue;
            }
            let fetched = cost + instance.costs[f as usize];
            if (mask.count_ones() as usize) < k {
                merge_min(&mut next, mask | fbit, fetched);
            } else {
                // Evict any cached file.
                let mut m = mask;
                while m != 0 {
                    let v = m & m.wrapping_neg();
                    merge_min(&mut next, (mask & !v) | fbit, fetched);
                    m &= m - 1;
                }
            }
        }
        frontier = next;
    }
    Ok(frontier.values().copied().min().unwrap_or(0))
}

fn merge_min(map: &mut HashMap<u16, u64>, key: u16, val: u64) {
    map.entry(key)
        .and_modify(|v| *v = (*v).min(val))
        .or_insert(val);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(requests: &[u32], nfiles: usize) -> WeightedCachingInstance {
        WeightedCachingInstance::unit(nfiles, requests.to_vec()).unwrap()
    }

    #[test]
    fn validation() {
        assert!(WeightedCachingInstance::new(vec![0], vec![]).is_err());
        assert!(WeightedCachingInstance::new(vec![1], vec![1]).is_err());
        assert!(WeightedCachingInstance::new(vec![1, 2], vec![0, 1]).is_ok());
    }

    #[test]
    fn lru_classic_sequence() {
        // k=2, requests 0,1,2,0: LRU evicts 0 at the miss on 2, so the final
        // 0 faults again: 4 faults total.
        let inst = seq(&[0, 1, 2, 0], 3);
        let mut lru = LruCache::new();
        assert_eq!(run_policy(&inst, &mut lru, 2), 4);
    }

    #[test]
    fn belady_beats_lru_on_its_bad_case() {
        // Cyclic access with k=2 over 3 files: LRU faults every time; Belady
        // keeps one file pinned.
        let reqs: Vec<u32> = (0..12).map(|i| i % 3).collect();
        let inst = seq(&reqs, 3);
        let mut lru = LruCache::new();
        let lru_cost = run_policy(&inst, &mut lru, 2);
        let opt = belady_faults(&inst, 2);
        assert_eq!(lru_cost, 12, "LRU thrashes on a cycle");
        assert!(opt <= 7, "Belady pins: {opt}");
    }

    #[test]
    fn belady_matches_weighted_dp_on_unit_costs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let nfiles = rng.gen_range(2..6);
            let reqs: Vec<u32> = (0..rng.gen_range(4..20))
                .map(|_| rng.gen_range(0..nfiles as u32))
                .collect();
            let inst = seq(&reqs, nfiles);
            let k = rng.gen_range(1..=3);
            assert_eq!(
                belady_faults(&inst, k),
                optimal_weighted(&inst, k).unwrap(),
                "reqs {reqs:?} k {k}"
            );
        }
    }

    #[test]
    fn landlord_respects_costs() {
        // File 0 is expensive (10), files 1 and 2 are cheap (1). With k=2 and
        // alternating cheap requests, Landlord keeps the expensive file.
        let inst =
            WeightedCachingInstance::new(vec![10, 1, 1], vec![0, 1, 2, 1, 2, 1, 2, 0]).unwrap();
        let mut landlord = Landlord::new(&inst.costs);
        let ll = run_policy(&inst, &mut landlord, 2);
        let mut lru = LruCache::new();
        let lru_cost = run_policy(&inst, &mut lru, 2);
        assert!(ll < lru_cost, "Landlord {ll} vs LRU {lru_cost}");
        // Landlord never pays for file 0 twice.
        assert_eq!(ll, 10 + 6);
    }

    #[test]
    fn landlord_at_least_opt() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..15 {
            let nfiles = rng.gen_range(2..6);
            let costs: Vec<u64> = (0..nfiles).map(|_| rng.gen_range(1..8)).collect();
            let reqs: Vec<u32> = (0..rng.gen_range(5..25))
                .map(|_| rng.gen_range(0..nfiles as u32))
                .collect();
            let inst = WeightedCachingInstance::new(costs, reqs).unwrap();
            let k = rng.gen_range(1..=3);
            let opt = optimal_weighted(&inst, k).unwrap();
            let mut landlord = Landlord::new(&inst.costs);
            let ll = run_policy(&inst, &mut landlord, k);
            assert!(ll >= opt);
            // Landlord with k resources vs OPT with 1: ratio k/(k-1+1) = k.
            let opt1 = optimal_weighted(&inst, 1).unwrap();
            assert!(ll <= k as u64 * opt1.max(1) * 2, "ll {ll} opt1 {opt1} k {k}");
        }
    }

    #[test]
    fn fifo_runs() {
        let inst = seq(&[0, 1, 0, 2, 0, 1], 3);
        let mut fifo = FifoCache::new();
        let cost = run_policy(&inst, &mut fifo, 2);
        assert!(cost >= belady_faults(&inst, 2));
    }

    #[test]
    fn marking_beats_lru_on_cycles_in_expectation() {
        // The cyclic adversary: LRU faults on every request; Marking faults
        // roughly on a 2·H_k fraction.
        let reqs: Vec<u32> = (0..300).map(|i| i % 3).collect();
        let inst = seq(&reqs, 3);
        let mut lru = LruCache::new();
        let lru_cost = run_policy(&inst, &mut lru, 2);
        let avg_marking: f64 = (0..10)
            .map(|seed| run_policy(&inst, &mut MarkingCache::new(seed), 2) as f64)
            .sum::<f64>()
            / 10.0;
        assert_eq!(lru_cost, 300);
        assert!(
            avg_marking < 0.9 * lru_cost as f64,
            "marking {avg_marking} vs lru {lru_cost}"
        );
        // And it is never below the offline optimum.
        let opt = belady_faults(&inst, 2) as f64;
        assert!(avg_marking >= opt);
    }

    #[test]
    fn marking_is_seeded() {
        let reqs: Vec<u32> = (0..100).map(|i| (i * 7 % 5) as u32).collect();
        let inst = seq(&reqs, 5);
        let a = run_policy(&inst, &mut MarkingCache::new(9), 3);
        let b = run_policy(&inst, &mut MarkingCache::new(9), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_requests_cost_nothing() {
        let inst = seq(&[], 2);
        let mut lru = LruCache::new();
        assert_eq!(run_policy(&inst, &mut lru, 1), 0);
        assert_eq!(belady_faults(&inst, 1), 0);
        assert_eq!(optimal_weighted(&inst, 1).unwrap(), 0);
    }
}
