//! Brute-force oracle for the flow/delay-factor metrics.
//!
//! `schedule_objectives` shares `PendingJobs` (count-per-deadline buckets)
//! with the engine. The oracle here tracks every job *individually* as an
//! `(arrival, deadline)` record and recomputes the same objectives with
//! naive scans — if the two ever disagree on a random small trace, one of
//! them is lying about which job an execution served.

use proptest::prelude::*;
use rrs_core::engine::{Engine, EngineOptions, EngineView, Policy};
use rrs_core::metrics::{schedule_objectives, ObjectiveMetrics};
use rrs_core::prelude::*;
use rrs_core::schedule::ExplicitSchedule;
use rrs_core::time::Speed;

/// Deterministic executing policy: cache the n colors with the most pending
/// jobs (ties by color id).
struct TopPending;

impl Policy for TopPending {
    fn name(&self) -> String {
        "top-pending".into()
    }
    fn reconfigure(&mut self, _round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        let mut colors = view.pending.nonidle_colors();
        colors.sort_by_key(|&c| (std::cmp::Reverse(view.pending.count(c)), c));
        colors.truncate(view.n);
        CacheTarget::singles(colors)
    }
}

/// Individual-job replay of a schedule: the independent oracle.
fn brute_force(trace: &Trace, schedule: &ExplicitSchedule) -> ObjectiveMetrics {
    let colors = trace.colors();
    // Live jobs per color as (arrival, deadline), kept in arrival order.
    let mut live: Vec<Vec<(u64, u64)>> = vec![Vec::new(); colors.len()];
    let mut m = ObjectiveMetrics::default();
    let mut steps = schedule.steps.iter().peekable();

    for round in 0..=trace.horizon() {
        for jobs in live.iter_mut() {
            let before = jobs.len() as u64;
            jobs.retain(|&(_, deadline)| deadline > round);
            m.dropped += before - jobs.len() as u64;
        }
        for (color, count) in trace.arrivals_at(round) {
            for _ in 0..count {
                live[color.index()].push((round, round + colors.delay_bound(color)));
            }
        }
        for mini in 0..schedule.speed.mini_rounds() {
            let Some(step) = steps.peek() else { continue };
            if (step.round, step.mini) != (round, mini) {
                continue;
            }
            let step = steps.next().expect("peeked step exists");
            for &color in &step.executed {
                let jobs = &mut live[color.index()];
                let (pos, _) = jobs
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &(arrival, deadline))| (deadline, arrival))
                    .expect("schedule executes a color with no pending job");
                let (arrival, _) = jobs.remove(pos);
                let d = colors.delay_bound(color);
                let flow = round - arrival + 1;
                m.executed += 1;
                m.flow_total += flow;
                m.weighted_flow += colors.drop_cost(color) * flow;
                let df = flow as f64 / d as f64;
                m.delay_factor_sum += df;
                if df > m.max_delay_factor {
                    m.max_delay_factor = df;
                }
            }
        }
    }
    for jobs in &live {
        m.dropped += jobs.len() as u64;
    }
    m
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    // Up to 4 colors with small delay bounds and drop costs, up to 12
    // arrival batches in the first 24 rounds.
    (
        proptest::collection::vec((1u64..=8, 1u64..=5), 1..=4),
        proptest::collection::vec((0u64..24, 0u32..4, 1u64..=4), 1..=12),
    )
        .prop_map(|(colors, batches)| {
            let ncolors = colors.len() as u32;
            let mut table = ColorTable::new();
            for (d, c) in colors {
                table.push(ColorInfo::with_drop_cost(d, c));
            }
            let mut b = TraceBuilder::with_colors(table);
            for (round, color, count) in batches {
                b = b.jobs(round, color % ncolors, count);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_match_individual_job_oracle(
        trace in arb_trace(),
        n in 1usize..=3,
        double in prop_oneof![Just(false), Just(true)],
    ) {
        let speed = if double { Speed::Double } else { Speed::Uni };
        let mut policy = TopPending;
        let result = Engine::with_options(EngineOptions {
            speed,
            record_schedule: true,
            ..Default::default()
        })
        .run(&trace, &mut policy, n, CostModel::new(2))
        .unwrap();
        let schedule = result.schedule.as_ref().unwrap();

        let fast = schedule_objectives(&trace, schedule).unwrap();
        let slow = brute_force(&trace, schedule);

        prop_assert_eq!(fast.executed, slow.executed);
        prop_assert_eq!(fast.dropped, slow.dropped);
        prop_assert_eq!(fast.flow_total, slow.flow_total);
        prop_assert_eq!(fast.weighted_flow, slow.weighted_flow);
        prop_assert!((fast.delay_factor_sum - slow.delay_factor_sum).abs() < 1e-9);
        prop_assert!((fast.max_delay_factor - slow.max_delay_factor).abs() < 1e-12);
        // Engine accounting agrees too.
        prop_assert_eq!(fast.executed, result.executed);
        prop_assert_eq!(fast.dropped, result.dropped_jobs);
        prop_assert_eq!(fast.executed + fast.dropped, trace.total_jobs());
        // Served jobs never run past their window in this model.
        prop_assert!(fast.max_delay_factor <= 1.0 + 1e-12);
    }
}
