//! Property tests for the engine's conservation and cost-accounting
//! invariants, on traces with **variable drop costs** and policies that
//! reconfigure at varying cadences:
//!
//! * every arrived job is either executed or dropped (nothing is lost or
//!   double-counted), per color and in total;
//! * the total cost decomposes exactly as
//!   `Δ · reconfig_events + Σ_ℓ drops_ℓ · c_ℓ`.

use proptest::prelude::*;
use rrs_core::engine::run_policy;
use rrs_core::prelude::*;

/// Strategy: a trace over 1–3 colors with drop costs in 1..=3 and arrivals
/// in the first 16 rounds.
fn costed_trace() -> impl Strategy<Value = Trace> {
    let colors = proptest::collection::vec(
        (prop_oneof![Just(1u64), Just(2), Just(4), Just(8)], 1u64..=3),
        1..=3,
    );
    colors.prop_flat_map(|specs| {
        let ncolors = specs.len() as u32;
        let arrivals = proptest::collection::vec((0u64..16, 0..ncolors, 1u64..=9), 0..14);
        arrivals.prop_map(move |arr| {
            let mut table = ColorTable::new();
            for &(d, c) in &specs {
                table.push(ColorInfo::with_drop_cost(d, c));
            }
            let mut t = Trace::new(table);
            for (round, color, count) in arr {
                t.add(round, ColorId(color), count).unwrap();
            }
            t
        })
    })
}

/// A policy that recolors its whole cache every `period` rounds, cycling
/// through the colors — enough churn to exercise reconfiguration charging,
/// partial coverage and drops in the same run.
struct CyclePolicy {
    ncolors: u32,
    period: u64,
}

impl Policy for CyclePolicy {
    fn name(&self) -> String {
        "cycle".into()
    }

    fn reconfigure(&mut self, round: Round, _mini: u32, view: &EngineView) -> CacheTarget {
        let first = ((round / self.period) % self.ncolors as u64) as u32;
        CacheTarget::singles(
            (0..view.n.min(self.ncolors as usize) as u32)
                .map(|i| ColorId((first + i) % self.ncolors)),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_job_is_executed_or_dropped(
        trace in costed_trace(),
        n in 1usize..5,
        delta in 1u64..6,
        period in 1u64..5,
    ) {
        let mut p = CyclePolicy { ncolors: trace.colors().len() as u32, period };
        let r = run_policy(&trace, &mut p, n, delta).unwrap();
        prop_assert_eq!(r.executed + r.dropped_jobs, trace.total_jobs());
        prop_assert_eq!(r.executed_by_color.iter().sum::<u64>(), r.executed);
        prop_assert_eq!(r.drops_by_color.iter().sum::<u64>(), r.dropped_jobs);
        for (i, (&e, &d)) in r.executed_by_color.iter().zip(&r.drops_by_color).enumerate() {
            prop_assert_eq!(e + d, trace.jobs_of_color(ColorId(i as u32)), "color {}", i);
        }
    }

    #[test]
    fn total_cost_decomposes_exactly(
        trace in costed_trace(),
        n in 1usize..5,
        delta in 1u64..6,
        period in 1u64..5,
    ) {
        let mut p = CyclePolicy { ncolors: trace.colors().len() as u32, period };
        let r = run_policy(&trace, &mut p, n, delta).unwrap();
        let drop_cost: u64 = r
            .drops_by_color
            .iter()
            .enumerate()
            .map(|(i, &d)| d * trace.colors().drop_cost(ColorId(i as u32)))
            .sum();
        prop_assert_eq!(r.cost.reconfig, delta * r.reconfig_events);
        prop_assert_eq!(r.cost.drop, drop_cost);
        prop_assert_eq!(r.cost.total(), delta * r.reconfig_events + drop_cost);
    }
}
