//! Rounds, phases, blocks and half-blocks.
//!
//! Time proceeds in rounds numbered from 0 (paper §2). Each round has four phases
//! in order: drop, arrival, reconfiguration, execution. Double-speed schedules
//! (paper §3.3) repeat the last two phases, splitting a round into two
//! *mini-rounds*.
//!
//! For a delay bound `p`, *block* `i` of `p` is the `p` rounds starting at `i·p`
//! (paper §3.3) and *half-block* `i` of `p` is the `p/2` rounds starting at
//! `i·p/2` (paper §5.1). These index computations are used by the batching
//! reductions and by the offline `Aggregate` construction.

use serde::{Deserialize, Serialize};

/// A round index (nonnegative integer).
pub type Round = u64;

/// The four phases of a round, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Jobs whose deadline equals the current round are dropped.
    Drop,
    /// The current round's request (a set of unit jobs) is received.
    Arrival,
    /// Each resource may be reconfigured to a different color at cost Δ.
    Reconfiguration,
    /// Each resource configured to color ℓ executes up to one pending ℓ job.
    Execution,
}

/// Uni-speed (one mini-round per round) or double-speed (two mini-rounds per
/// round); see paper §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Speed {
    /// One reconfiguration + execution phase per round (the default).
    Uni,
    /// Two mini-rounds per round, as used by DS-Seq-EDF in the analysis.
    Double,
}

impl Speed {
    /// Number of mini-rounds per round.
    #[inline]
    pub fn mini_rounds(self) -> u32 {
        match self {
            Speed::Uni => 1,
            Speed::Double => 2,
        }
    }
}

/// The index `i` of the block of delay bound `p` containing `round`,
/// i.e. `⌊round / p⌋`.
///
/// # Panics
/// Panics if `p == 0`.
#[inline]
pub fn block_index(p: u64, round: Round) -> u64 {
    assert!(p > 0, "delay bound must be positive");
    round / p
}

/// The first round of block `i` of delay bound `p` (`i·p`).
#[inline]
pub fn block_start(p: u64, i: u64) -> Round {
    i.checked_mul(p).expect("block start overflows u64")
}

/// The index of the half-block of delay bound `p` containing `round`,
/// i.e. `⌊round / (p/2)⌋`.
///
/// # Panics
/// Panics if `p < 2` or `p` is odd (half-blocks are defined for even `p`;
/// the paper uses powers of two greater than 1).
#[inline]
pub fn half_block_index(p: u64, round: Round) -> u64 {
    assert!(p >= 2 && p.is_multiple_of(2), "half-blocks need an even delay bound >= 2");
    round / (p / 2)
}

/// The first round of half-block `i` of delay bound `p` (`i·p/2`).
#[inline]
pub fn half_block_start(p: u64, i: u64) -> Round {
    assert!(p >= 2 && p.is_multiple_of(2), "half-blocks need an even delay bound >= 2");
    i.checked_mul(p / 2).expect("half-block start overflows u64")
}

/// Whether `round` is an integral multiple of `p` (batched arrival instants).
#[inline]
pub fn is_multiple(p: u64, round: Round) -> bool {
    assert!(p > 0, "delay bound must be positive");
    round.is_multiple_of(p)
}

/// The most recent integral multiple of `p` at or before `round` (used by the
/// ΔLRU timestamp definition, paper §3.1.1).
#[inline]
pub fn last_multiple(p: u64, round: Round) -> Round {
    assert!(p > 0, "delay bound must be positive");
    round - round % p
}

/// The next integral multiple of `p` strictly after `round`.
#[inline]
pub fn next_multiple(p: u64, round: Round) -> Round {
    last_multiple(p, round) + p
}

/// Rounds a delay bound down to a power of two (`2^j ≤ p < 2^{j+1}` ↦ `2^j`);
/// used by the §5.3 extension to arbitrary delay bounds.
///
/// # Panics
/// Panics if `p == 0`.
#[inline]
pub fn pow2_floor(p: u64) -> u64 {
    assert!(p > 0, "delay bound must be positive");
    1u64 << (63 - p.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_math() {
        assert_eq!(block_index(4, 0), 0);
        assert_eq!(block_index(4, 3), 0);
        assert_eq!(block_index(4, 4), 1);
        assert_eq!(block_start(4, 3), 12);
    }

    #[test]
    fn half_block_math() {
        assert_eq!(half_block_index(8, 0), 0);
        assert_eq!(half_block_index(8, 3), 0);
        assert_eq!(half_block_index(8, 4), 1);
        assert_eq!(half_block_index(8, 11), 2);
        assert_eq!(half_block_start(8, 2), 8);
    }

    #[test]
    fn multiples() {
        assert!(is_multiple(4, 0));
        assert!(is_multiple(4, 8));
        assert!(!is_multiple(4, 9));
        assert_eq!(last_multiple(4, 9), 8);
        assert_eq!(last_multiple(4, 8), 8);
        assert_eq!(next_multiple(4, 8), 12);
        assert_eq!(next_multiple(4, 9), 12);
    }

    #[test]
    fn pow2_floor_rounds_down() {
        assert_eq!(pow2_floor(1), 1);
        assert_eq!(pow2_floor(2), 2);
        assert_eq!(pow2_floor(3), 2);
        assert_eq!(pow2_floor(17), 16);
        assert_eq!(pow2_floor(64), 64);
    }

    #[test]
    fn speed_mini_rounds() {
        assert_eq!(Speed::Uni.mini_rounds(), 1);
        assert_eq!(Speed::Double.mini_rounds(), 2);
    }

    #[test]
    #[should_panic]
    fn half_block_odd_rejected() {
        half_block_index(3, 0);
    }
}
