//! Run results and per-run statistics.

use crate::color::ColorId;
use crate::cost::Cost;
use crate::schedule::ExplicitSchedule;
use crate::time::Round;
use serde::{Deserialize, Serialize};

/// The outcome of running a policy over a trace.
///
/// `PartialEq`/`Eq` compare every field; the streaming≡batch conformance and
/// snapshot/restore tests rely on this to assert bit-identical runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunResult {
    /// Policy name.
    pub policy: String,
    /// Number of resources the policy was given.
    pub n: usize,
    /// Reconfiguration cost Δ used.
    pub delta: u64,
    /// Accumulated cost.
    pub cost: Cost,
    /// Number of executed jobs.
    pub executed: u64,
    /// Number of dropped jobs (equals `cost.drop` under unit drop costs).
    pub dropped_jobs: u64,
    /// Number of individual resource recolorings (cost.reconfig = events × Δ).
    pub reconfig_events: u64,
    /// Rounds simulated (horizon + 1).
    pub rounds: Round,
    /// Dropped jobs per color (indexed by color id).
    pub drops_by_color: Vec<u64>,
    /// Executed jobs per color (indexed by color id).
    pub executed_by_color: Vec<u64>,
    /// Recorded schedule, when the engine was asked to keep one.
    #[serde(skip)]
    pub schedule: Option<ExplicitSchedule>,
    /// Execution-latency histogram, when the engine was asked to track it.
    pub latency: Option<crate::latency::LatencyHistogram>,
    /// Hot-path counters, when the engine was asked to track them.
    pub perf: Option<PerfCounters>,
}

/// Deterministic hot-path counters collected by the engine when
/// [`crate::EngineOptions::track_perf`] is on.
///
/// Everything here is a pure function of the (trace, policy, options) triple —
/// no wall-clock — so two runs of the same workload produce identical counters
/// and [`RunResult`] equality stays a determinism witness. Wall-clock
/// rounds/sec is measured by the bench harness around the engine, not inside
/// it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Rounds simulated.
    pub rounds: u64,
    /// Total colors visited by the drop phase (expiry-wheel hits, i.e. colors
    /// that actually had jobs due). The pre-wheel engine touched
    /// `rounds × ncolors`; the wheel touches only these.
    pub drop_colors_touched: u64,
    /// Total `(color, count)` arrival records processed.
    pub arrival_colors_touched: u64,
    /// Total execution slots inspected (sum over mini-rounds of target copies).
    pub exec_slots: u64,
    /// High-water mark of the engine's reusable `dropped` scratch buffer.
    pub dropped_hwm: usize,
    /// High-water mark of the engine's reusable `arrivals` scratch buffer.
    pub arrivals_hwm: usize,
    /// High-water mark of the engine's reusable `executed_colors` scratch buffer.
    pub executed_hwm: usize,
}

impl RunResult {
    /// Creates an empty result.
    pub fn new(policy: String, n: usize, delta: u64, ncolors: usize) -> Self {
        RunResult {
            policy,
            n,
            delta,
            cost: Cost::ZERO,
            executed: 0,
            dropped_jobs: 0,
            reconfig_events: 0,
            rounds: 0,
            drops_by_color: vec![0; ncolors],
            executed_by_color: vec![0; ncolors],
            schedule: None,
            latency: None,
            perf: None,
        }
    }

    /// Records `count` drops of `color` at `drop_cost` each.
    pub fn record_drops(&mut self, color: ColorId, count: u64, drop_cost: u64) {
        self.cost.drop += count * drop_cost;
        self.dropped_jobs += count;
        self.drops_by_color[color.index()] += count;
    }

    /// Records `events` resource recolorings at cost `delta` each.
    pub fn record_reconfigs(&mut self, events: u64, delta: u64) {
        self.reconfig_events += events;
        self.cost.reconfig += events * delta;
    }

    /// Records one executed job of `color`.
    pub fn record_execution(&mut self, color: ColorId) {
        self.executed += 1;
        self.executed_by_color[color.index()] += 1;
    }

    /// Fraction of jobs executed (1.0 when there were no jobs).
    pub fn completion_rate(&self) -> f64 {
        let total = self.executed + self.dropped_jobs;
        if total == 0 {
            1.0
        } else {
            self.executed as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut r = RunResult::new("p".into(), 4, 3, 2);
        r.record_drops(ColorId(1), 5, 1);
        r.record_reconfigs(2, 3);
        r.record_execution(ColorId(0));
        assert_eq!(r.cost, Cost::new(6, 5));
        assert_eq!(r.dropped_jobs, 5);
        assert_eq!(r.drops_by_color, vec![0, 5]);
        assert_eq!(r.executed_by_color, vec![1, 0]);
        assert!((r.completion_rate() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn completion_rate_empty_is_one() {
        let r = RunResult::new("p".into(), 1, 1, 0);
        assert_eq!(r.completion_rate(), 1.0);
    }
}
