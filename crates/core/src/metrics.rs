//! Richer scheduling objectives extracted from recorded schedules.
//!
//! The paper's objective is reconfiguration + drop cost, but QoS comparisons
//! also care about *how* the served jobs were served. Following the
//! delay-factor and weighted-flow objectives of Chekuri–Moseley
//! (arXiv:0807.1891), [`schedule_objectives`] replays a recorded
//! [`ExplicitSchedule`] against its [`Trace`] and computes, per executed job
//! of color ℓ with arrival round `a` executed in round `r`:
//!
//! * **flow time** `F = r − a + 1` (completion at the end of the execution
//!   round, so a job served in its arrival round has flow 1);
//! * **weighted flow** `c_ℓ · F`, using the color's drop cost as its weight;
//! * **delay factor** `F / D_ℓ ∈ (0, 1]` — how deep into its feasibility
//!   window the job ran. In Chekuri–Moseley jobs may finish past their
//!   deadline (factor > 1); in this model a late job is dropped instead, so
//!   the factor of a *served* job never exceeds 1 and drops are reported
//!   separately (`dropped`), exactly as the cost model does.
//!
//! The replay shares only [`PendingJobs`] with the engine: executions consume
//! the earliest-deadline pending job of their color (the engine's own
//! execution rule), so the arrival round of each executed job — and therefore
//! every metric — is a pure function of `(trace, schedule)`. This makes the
//! metrics computable offline from any conformant run, including a live
//! service run whose batch replay is bit-identical.

use crate::color::ColorId;
use crate::error::{Error, Result};
use crate::pending::PendingJobs;
use crate::schedule::ExplicitSchedule;
use crate::stats::RunResult;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Flow/delay-factor aggregates over the executed jobs of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveMetrics {
    /// Jobs executed (each contributes one flow/delay-factor sample).
    pub executed: u64,
    /// Jobs dropped (no flow sample; reported for context).
    pub dropped: u64,
    /// Σ flow time over executed jobs, in rounds.
    pub flow_total: u64,
    /// Σ `drop_cost(color) × flow` over executed jobs.
    pub weighted_flow: u64,
    /// Σ `flow / D_color` over executed jobs.
    pub delay_factor_sum: f64,
    /// Max `flow / D_color` over executed jobs (0 when none executed).
    pub max_delay_factor: f64,
}

impl ObjectiveMetrics {
    /// Mean flow time of executed jobs, in rounds (0 when none executed).
    pub fn mean_flow(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.flow_total as f64 / self.executed as f64
        }
    }

    /// Mean delay factor of executed jobs (0 when none executed).
    pub fn mean_delay_factor(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.delay_factor_sum / self.executed as f64
        }
    }

    /// Folds another run's aggregates into this one (fleet-level totals).
    pub fn merge(&mut self, other: &ObjectiveMetrics) {
        self.executed += other.executed;
        self.dropped += other.dropped;
        self.flow_total += other.flow_total;
        self.weighted_flow += other.weighted_flow;
        self.delay_factor_sum += other.delay_factor_sum;
        self.max_delay_factor = self.max_delay_factor.max(other.max_delay_factor);
    }
}

/// Replays `schedule` against `trace` and computes the flow/delay-factor
/// objectives of its executions.
///
/// Only the execution lists are consulted — cache feasibility is
/// [`crate::schedule::check_schedule`]'s job — but executions must still name
/// pending jobs: an execution of a color with nothing pending in its window
/// is an [`Error::InvalidSchedule`], as are out-of-order or beyond-horizon
/// steps.
pub fn schedule_objectives(trace: &Trace, schedule: &ExplicitSchedule) -> Result<ObjectiveMetrics> {
    let colors = trace.colors();
    let minis = schedule.speed.mini_rounds();
    let mut pending = PendingJobs::new(colors.len());
    let mut m = ObjectiveMetrics::default();
    let horizon = trace.horizon();
    let mut steps = schedule.steps.iter().peekable();

    for round in 0..=horizon {
        pending.drop_expired(round);
        for (color, count) in trace.arrivals_at(round) {
            pending.arrive(color, round + colors.delay_bound(color), count);
        }
        for mini in 0..minis {
            let step = match steps.peek() {
                Some(s) if s.round == round && s.mini == mini => {
                    steps.next().expect("peeked step exists")
                }
                Some(s) if (s.round, s.mini) < (round, mini) => {
                    return Err(Error::InvalidSchedule {
                        round,
                        reason: format!(
                            "step ({}, {}) out of order or duplicated",
                            s.round, s.mini
                        ),
                    });
                }
                _ => continue,
            };
            if step.mini >= minis {
                return Err(Error::InvalidSchedule {
                    round,
                    reason: format!("mini-round {} exceeds speed {}", step.mini, minis),
                });
            }
            for &c in &step.executed {
                let deadline = pending.execute_one(c).ok_or(Error::InvalidSchedule {
                    round,
                    reason: format!("execution of {c} with no pending job"),
                })?;
                record_execution(&mut m, trace, c, round, deadline);
            }
        }
    }
    if let Some(s) = steps.next() {
        return Err(Error::InvalidSchedule {
            round: s.round,
            reason: format!("step at round {} beyond the horizon {horizon}", s.round),
        });
    }
    m.dropped = trace.total_jobs() - m.executed;
    Ok(m)
}

fn record_execution(
    m: &mut ObjectiveMetrics,
    trace: &Trace,
    color: ColorId,
    round: u64,
    deadline: u64,
) {
    let d = trace.colors().delay_bound(color);
    let arrival = deadline - d;
    let flow = round - arrival + 1;
    m.executed += 1;
    m.flow_total += flow;
    m.weighted_flow += trace.colors().drop_cost(color) * flow;
    let df = flow as f64 / d as f64;
    m.delay_factor_sum += df;
    if df > m.max_delay_factor {
        m.max_delay_factor = df;
    }
}

/// Extracts the objectives of a finished run from its recorded schedule.
///
/// Fails with [`Error::InvalidParameter`] when the run kept no schedule
/// (`EngineOptions::record_schedule` off), and cross-checks the replay
/// against the run's own executed/dropped accounting — a mismatch means the
/// schedule does not belong to this `(trace, result)` pair.
pub fn run_objectives(trace: &Trace, result: &RunResult) -> Result<ObjectiveMetrics> {
    let schedule = result.schedule.as_ref().ok_or_else(|| {
        Error::InvalidParameter(
            "run kept no schedule (enable EngineOptions::record_schedule)".into(),
        )
    })?;
    let m = schedule_objectives(trace, schedule)?;
    if m.executed != result.executed || m.dropped != result.dropped_jobs {
        return Err(Error::InvalidParameter(format!(
            "schedule executes {} and drops {} jobs but the run recorded {} / {}",
            m.executed, m.dropped, result.executed, result.dropped_jobs
        )));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::engine::{Engine, EngineOptions, EngineView, Policy};
    use crate::resource::CacheTarget;
    use crate::schedule::ScheduleStep;
    use crate::time::{Round, Speed};
    use crate::trace::TraceBuilder;

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    #[test]
    fn hand_built_schedule_metrics() {
        // Two jobs of color 0 (D=4) arrive at round 0; serve one at round 0
        // (flow 1, df 1/4) and one at round 2 (flow 3, df 3/4).
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 2).build();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        for round in [0, 2] {
            s.steps
                .push(ScheduleStep::new(round, 0, CacheTarget::singles([c(0)]), vec![c(0)]));
        }
        let m = schedule_objectives(&trace, &s).unwrap();
        assert_eq!(m.executed, 2);
        assert_eq!(m.dropped, 0);
        assert_eq!(m.flow_total, 4);
        assert_eq!(m.weighted_flow, 4);
        assert!((m.mean_flow() - 2.0).abs() < 1e-12);
        assert!((m.mean_delay_factor() - 0.5).abs() < 1e-12);
        assert!((m.max_delay_factor - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weights_use_drop_costs() {
        let mut colors = crate::color::ColorTable::new();
        colors.push(crate::color::ColorInfo::with_drop_cost(4, 5));
        let trace = TraceBuilder::with_colors(colors).jobs(0, 0, 1).build();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps
            .push(ScheduleStep::new(1, 0, CacheTarget::singles([c(0)]), vec![c(0)]));
        let m = schedule_objectives(&trace, &s).unwrap();
        assert_eq!(m.flow_total, 2);
        assert_eq!(m.weighted_flow, 10);
    }

    #[test]
    fn drops_are_counted_not_sampled() {
        let trace = TraceBuilder::with_delay_bounds(&[2]).jobs(0, 0, 3).build();
        let s = ExplicitSchedule::new(1, Speed::Uni); // never executes
        let m = schedule_objectives(&trace, &s).unwrap();
        assert_eq!(m.executed, 0);
        assert_eq!(m.dropped, 3);
        assert_eq!(m.mean_flow(), 0.0);
        assert_eq!(m.mean_delay_factor(), 0.0);
        assert_eq!(m.max_delay_factor, 0.0);
    }

    #[test]
    fn executions_consume_earliest_deadline_first() {
        // Color 0 (D=4) arrives at rounds 0 and 2. A single execution at
        // round 3 must serve the *round-0* job (flow 4), not the round-2 one.
        let trace = TraceBuilder::with_delay_bounds(&[4])
            .jobs(0, 0, 1)
            .jobs(2, 0, 1)
            .build();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps
            .push(ScheduleStep::new(3, 0, CacheTarget::singles([c(0)]), vec![c(0)]));
        let m = schedule_objectives(&trace, &s).unwrap();
        assert_eq!(m.executed, 1);
        assert_eq!(m.flow_total, 4);
        assert!((m.max_delay_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_schedules_rejected() {
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 1).build();
        // Execution with nothing pending.
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps
            .push(ScheduleStep::new(0, 0, CacheTarget::singles([c(0)]), vec![c(0), c(0)]));
        assert!(schedule_objectives(&trace, &s).is_err());
        // Step beyond horizon.
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps
            .push(ScheduleStep::new(99, 0, CacheTarget::empty(), vec![]));
        assert!(schedule_objectives(&trace, &s).is_err());
        // Out-of-order steps.
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps.push(ScheduleStep::new(1, 0, CacheTarget::empty(), vec![]));
        s.steps.push(ScheduleStep::new(0, 0, CacheTarget::empty(), vec![]));
        assert!(schedule_objectives(&trace, &s).is_err());
    }

    /// A deterministic executing policy for engine-integration tests.
    struct TopPending;
    impl Policy for TopPending {
        fn name(&self) -> String {
            "top-pending".into()
        }
        fn reconfigure(&mut self, _r: Round, _m: u32, view: &EngineView) -> CacheTarget {
            let mut colors = view.pending.nonidle_colors();
            colors.sort_by_key(|&c| (std::cmp::Reverse(view.pending.count(c)), c));
            colors.truncate(view.n);
            CacheTarget::singles(colors)
        }
    }

    #[test]
    fn run_objectives_agrees_with_engine_accounting() {
        let trace = TraceBuilder::with_delay_bounds(&[2, 4, 8])
            .jobs(0, 0, 3)
            .jobs(0, 2, 5)
            .jobs(3, 1, 4)
            .jobs(6, 0, 2)
            .build();
        let mut policy = TopPending;
        let result = Engine::with_options(EngineOptions {
            record_schedule: true,
            track_latency: true,
            ..Default::default()
        })
        .run(&trace, &mut policy, 2, CostModel::new(2))
        .unwrap();
        let m = run_objectives(&trace, &result).unwrap();
        assert_eq!(m.executed, result.executed);
        assert_eq!(m.dropped, result.dropped_jobs);
        // Flow = sojourn + 1, so the engine's latency histogram pins the sum.
        let lat = result.latency.as_ref().unwrap();
        let sojourn_sum: u64 = lat
            .buckets()
            .iter()
            .enumerate()
            .map(|(l, &n)| l as u64 * n)
            .sum();
        assert_eq!(m.flow_total, sojourn_sum + m.executed);
        // Unit drop costs here: weighted flow equals plain flow.
        assert_eq!(m.weighted_flow, m.flow_total);
        assert!(m.max_delay_factor <= 1.0 + 1e-12);
    }

    #[test]
    fn run_objectives_requires_a_schedule_and_matching_counts() {
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 2).build();
        let mut policy = TopPending;
        let bare = Engine::new()
            .run(&trace, &mut policy, 1, CostModel::new(1))
            .unwrap();
        assert!(run_objectives(&trace, &bare).is_err(), "no schedule kept");

        let mut policy = TopPending;
        let recorded = Engine::with_options(EngineOptions {
            record_schedule: true,
            ..Default::default()
        })
        .run(&trace, &mut policy, 1, CostModel::new(1))
        .unwrap();
        // Mismatched trace: the schedule no longer matches the accounting.
        let other = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 7).build();
        assert!(run_objectives(&other, &recorded).is_err());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ObjectiveMetrics {
            executed: 2,
            dropped: 1,
            flow_total: 5,
            weighted_flow: 9,
            delay_factor_sum: 0.75,
            max_delay_factor: 0.5,
        };
        let b = ObjectiveMetrics {
            executed: 1,
            dropped: 0,
            flow_total: 4,
            weighted_flow: 4,
            delay_factor_sum: 1.0,
            max_delay_factor: 1.0,
        };
        a.merge(&b);
        assert_eq!(a.executed, 3);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.flow_total, 9);
        assert_eq!(a.weighted_flow, 13);
        assert!((a.delay_factor_sum - 1.75).abs() < 1e-12);
        assert!((a.max_delay_factor - 1.0).abs() < 1e-12);
    }
}
