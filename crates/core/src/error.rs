//! Error types for the rrs workspace.

use crate::color::ColorId;
use crate::time::Round;
use std::fmt;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by trace construction, engine configuration and schedule
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A color id referenced a color not present in the [`crate::ColorTable`].
    UnknownColor(ColorId),
    /// A trace or engine parameter was invalid (message explains which).
    InvalidParameter(String),
    /// A schedule failed validation against its trace.
    InvalidSchedule {
        /// Round at which the violation was detected.
        round: Round,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A policy produced a cache target exceeding the resource count.
    CacheOverflow {
        /// Round at which the overflow occurred.
        round: Round,
        /// Number of slots requested.
        requested: usize,
        /// Number of resources available.
        available: usize,
    },
    /// Trace decode failure (binary codec).
    Codec(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColor(c) => write!(f, "unknown color {c}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::InvalidSchedule { round, reason } => {
                write!(f, "invalid schedule at round {round}: {reason}")
            }
            Error::CacheOverflow {
                round,
                requested,
                available,
            } => write!(
                f,
                "cache target of {requested} slots exceeds {available} resources at round {round}"
            ),
            Error::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::UnknownColor(ColorId(3));
        assert!(e.to_string().contains("c3"));
        let e = Error::CacheOverflow {
            round: 7,
            requested: 9,
            available: 8,
        };
        assert!(e.to_string().contains("round 7"));
        let e = Error::InvalidSchedule {
            round: 1,
            reason: "x".into(),
        };
        assert!(e.to_string().contains("invalid schedule"));
    }
}
