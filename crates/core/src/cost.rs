//! Cost model and cost accounting.
//!
//! The paper's cost model (`[Δ | 1 | D_ℓ | ·]`): every resource reconfiguration
//! costs a fixed positive integer `Δ`; every dropped job costs 1. The objective is
//! to minimize the total cost.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// The instance-wide cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed reconfiguration cost Δ (a positive integer; paper §2).
    pub delta: u64,
}

impl CostModel {
    /// Creates a cost model with reconfiguration cost `delta`.
    ///
    /// # Panics
    /// Panics if `delta == 0`.
    pub fn new(delta: u64) -> Self {
        assert!(delta > 0, "Δ must be a positive integer");
        CostModel { delta }
    }
}

/// An accumulated cost, split into its two components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cost {
    /// Total reconfiguration cost (Δ × number of resource recolorings).
    pub reconfig: u64,
    /// Total drop cost (1 × number of dropped jobs).
    pub drop: u64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost { reconfig: 0, drop: 0 };

    /// Creates a cost from its components.
    pub fn new(reconfig: u64, drop: u64) -> Self {
        Cost { reconfig, drop }
    }

    /// Total cost (reconfiguration + drop).
    #[inline]
    pub fn total(&self) -> u64 {
        self.reconfig + self.drop
    }

    /// Ratio of this cost to `other` (∞ is reported as `f64::INFINITY`; 0/0 is 1).
    pub fn ratio_to(&self, other: &Cost) -> f64 {
        let a = self.total();
        let b = other.total();
        match (a, b) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            _ => a as f64 / b as f64,
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            reconfig: self.reconfig + rhs.reconfig,
            drop: self.drop + rhs.drop,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.reconfig += rhs.reconfig;
        self.drop += rhs.drop;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_addition() {
        let a = Cost::new(10, 3);
        let b = Cost::new(5, 7);
        assert_eq!(a.total(), 13);
        assert_eq!((a + b).total(), 25);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(Cost::ZERO.ratio_to(&Cost::ZERO), 1.0);
        assert_eq!(Cost::new(4, 0).ratio_to(&Cost::ZERO), f64::INFINITY);
        assert!((Cost::new(6, 0).ratio_to(&Cost::new(2, 1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_delta_rejected() {
        CostModel::new(0);
    }
}
