//! Request sequences (traces).
//!
//! The input to a reconfigurable resource scheduling problem is a sequence of
//! requests, one per round, each a (possibly empty) set of unit jobs (paper §2).
//! Jobs of the same color arriving in the same round are interchangeable, so a
//! [`Trace`] stores a count per `(round, color)` pair; rounds with no arrivals are
//! not stored.
//!
//! [`Trace::batch_class`] classifies a trace into the paper's batch hierarchy:
//! general (`[Δ|1|D_ℓ|1]`), batched (`[Δ|1|D_ℓ|D_ℓ]`: color-ℓ jobs arrive only at
//! integral multiples of `D_ℓ`) or rate-limited batched (additionally at most
//! `D_ℓ` color-ℓ jobs per multiple).

use crate::color::{ColorId, ColorTable};
use crate::error::{Error, Result};
use crate::time::{is_multiple, Round};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One arrival record: `count` unit jobs of `color` arriving in `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival round.
    pub round: Round,
    /// Color of the jobs.
    pub color: ColorId,
    /// Number of unit jobs (> 0).
    pub count: u64,
}

/// Which batch class a trace belongs to (paper's `batch` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchClass {
    /// Arrivals at arbitrary rounds: `[Δ | 1 | D_ℓ | 1]`.
    General,
    /// Color-ℓ arrivals only at integral multiples of `D_ℓ`: `[Δ | 1 | D_ℓ | D_ℓ]`.
    Batched,
    /// Batched with at most `D_ℓ` color-ℓ jobs per multiple (paper §3).
    RateLimited,
}

/// A complete problem input: the color table plus all arrivals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    colors: ColorTable,
    /// Arrivals keyed by round; inner map keyed by color. BTreeMaps keep
    /// deterministic iteration order (round-ascending, color-ascending).
    arrivals: BTreeMap<Round, BTreeMap<ColorId, u64>>,
    total_jobs: u64,
}

impl Trace {
    /// Creates an empty trace over the given colors.
    pub fn new(colors: ColorTable) -> Self {
        Trace {
            colors,
            arrivals: BTreeMap::new(),
            total_jobs: 0,
        }
    }

    /// The color table.
    #[inline]
    pub fn colors(&self) -> &ColorTable {
        &self.colors
    }

    /// Adds `count` jobs of `color` arriving at `round`.
    pub fn add(&mut self, round: Round, color: ColorId, count: u64) -> Result<()> {
        if color.index() >= self.colors.len() {
            return Err(Error::UnknownColor(color));
        }
        if count == 0 {
            return Ok(());
        }
        *self
            .arrivals
            .entry(round)
            .or_default()
            .entry(color)
            .or_insert(0) += count;
        self.total_jobs += count;
        Ok(())
    }

    /// Total number of jobs in the trace.
    #[inline]
    pub fn total_jobs(&self) -> u64 {
        self.total_jobs
    }

    /// Total number of jobs of one color.
    pub fn jobs_of_color(&self, color: ColorId) -> u64 {
        self.arrivals
            .values()
            .filter_map(|m| m.get(&color))
            .sum()
    }

    /// Arrivals in `round` as `(color, count)` pairs in color order; empty slice
    /// semantics via an empty Vec.
    pub fn arrivals_at(&self, round: Round) -> Vec<(ColorId, u64)> {
        let mut out = Vec::new();
        self.arrivals_into(round, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::arrivals_at`]: clears `out` and fills
    /// it with the round's `(color, count)` pairs in color order.
    pub fn arrivals_into(&self, round: Round, out: &mut Vec<(ColorId, u64)>) {
        out.clear();
        if let Some(m) = self.arrivals.get(&round) {
            out.extend(m.iter().map(|(&c, &n)| (c, n)));
        }
    }

    /// Iterates over all arrival records in (round, color) order.
    pub fn iter(&self) -> impl Iterator<Item = Arrival> + '_ {
        self.arrivals.iter().flat_map(|(&round, m)| {
            m.iter().map(move |(&color, &count)| Arrival {
                round,
                color,
                count,
            })
        })
    }

    /// The last round containing an arrival, or `None` for an empty trace.
    pub fn last_arrival_round(&self) -> Option<Round> {
        self.arrivals.keys().next_back().copied()
    }

    /// The first round after which no pending job can remain: the maximum job
    /// deadline over the trace (0 for an empty trace). The engine must simulate
    /// rounds `0 ..= horizon` so that every job is either executed or dropped.
    pub fn horizon(&self) -> Round {
        self.iter()
            .map(|a| a.round + self.colors.delay_bound(a.color))
            .max()
            .unwrap_or(0)
    }

    /// Classifies the trace into the paper's batch hierarchy.
    pub fn batch_class(&self) -> BatchClass {
        let mut batched = true;
        let mut rate_limited = true;
        for a in self.iter() {
            let d = self.colors.delay_bound(a.color);
            if !is_multiple(d, a.round) {
                batched = false;
                rate_limited = false;
                break;
            }
            if a.count > d {
                rate_limited = false;
            }
        }
        if !batched {
            BatchClass::General
        } else if rate_limited {
            BatchClass::RateLimited
        } else {
            BatchClass::Batched
        }
    }

    /// Serializes the trace to a compact binary representation.
    ///
    /// Layout: `u32` color count; per color a `u64` delay bound and a `u64`
    /// drop cost; `u64` arrival record count; per record `u64` round, `u32`
    /// color, `u64` count.
    pub fn to_bytes(&self) -> Bytes {
        let records: u64 = self.iter().count() as u64;
        let mut buf = BytesMut::with_capacity(16 + self.colors.len() * 16 + records as usize * 20);
        buf.put_u32(self.colors.len() as u32);
        for (_, info) in self.colors.iter() {
            buf.put_u64(info.delay_bound);
            buf.put_u64(info.drop_cost);
        }
        buf.put_u64(records);
        for a in self.iter() {
            buf.put_u64(a.round);
            buf.put_u32(a.color.0);
            buf.put_u64(a.count);
        }
        buf.freeze()
    }

    /// Decodes a trace from [`Trace::to_bytes`] output.
    pub fn from_bytes(mut data: Bytes) -> Result<Self> {
        let need = |data: &Bytes, n: usize| -> Result<()> {
            if data.remaining() < n {
                Err(Error::Codec(format!(
                    "truncated trace: need {n} more bytes, have {}",
                    data.remaining()
                )))
            } else {
                Ok(())
            }
        };
        need(&data, 4)?;
        let ncolors = data.get_u32() as usize;
        let mut colors = ColorTable::new();
        for _ in 0..ncolors {
            need(&data, 16)?;
            let d = data.get_u64();
            let c = data.get_u64();
            if d == 0 || c == 0 {
                return Err(Error::Codec("zero delay bound or drop cost".into()));
            }
            colors.push(crate::color::ColorInfo::with_drop_cost(d, c));
        }
        need(&data, 8)?;
        let records = data.get_u64();
        let mut trace = Trace::new(colors);
        for _ in 0..records {
            need(&data, 20)?;
            let round = data.get_u64();
            let color = ColorId(data.get_u32());
            let count = data.get_u64();
            trace.add(round, color, count)?;
        }
        Ok(trace)
    }
}

/// Fluent builder for traces used heavily in tests and generators.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// Starts a builder over delay bounds (color ids are assigned in order).
    pub fn with_delay_bounds(bounds: &[u64]) -> Self {
        TraceBuilder {
            trace: Trace::new(ColorTable::from_delay_bounds(bounds)),
        }
    }

    /// Starts a builder over an existing color table.
    pub fn with_colors(colors: ColorTable) -> Self {
        TraceBuilder {
            trace: Trace::new(colors),
        }
    }

    /// Adds `count` jobs of color `color` at `round`.
    ///
    /// # Panics
    /// Panics on an unknown color (builder misuse is a programming error).
    pub fn jobs(mut self, round: Round, color: u32, count: u64) -> Self {
        self.trace
            .add(round, ColorId(color), count)
            .expect("builder color must exist");
        self
    }

    /// Adds `count` jobs of `color` at every multiple of its delay bound in
    /// `start..end` (batched arrival pattern).
    pub fn batched_jobs(mut self, color: u32, count: u64, start: Round, end: Round) -> Self {
        let d = self.trace.colors.delay_bound(ColorId(color));
        let mut r = start.div_ceil(d) * d;
        while r < end {
            self.trace
                .add(r, ColorId(color), count)
                .expect("builder color must exist");
            r += d;
        }
        self
    }

    /// Finishes the trace.
    pub fn build(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut t = Trace::new(ColorTable::from_delay_bounds(&[4, 8]));
        t.add(0, ColorId(0), 3).unwrap();
        t.add(0, ColorId(1), 2).unwrap();
        t.add(4, ColorId(0), 1).unwrap();
        assert_eq!(t.total_jobs(), 6);
        assert_eq!(t.jobs_of_color(ColorId(0)), 4);
        assert_eq!(t.arrivals_at(0), vec![(ColorId(0), 3), (ColorId(1), 2)]);
        assert_eq!(t.arrivals_at(1), vec![]);
        assert_eq!(t.last_arrival_round(), Some(4));
        assert_eq!(t.horizon(), 8); // color 1 arrives at 0 with D=8
    }

    #[test]
    fn unknown_color_rejected() {
        let mut t = Trace::new(ColorTable::from_delay_bounds(&[4]));
        assert_eq!(
            t.add(0, ColorId(9), 1),
            Err(Error::UnknownColor(ColorId(9)))
        );
    }

    #[test]
    fn zero_count_is_noop() {
        let mut t = Trace::new(ColorTable::from_delay_bounds(&[4]));
        t.add(0, ColorId(0), 0).unwrap();
        assert_eq!(t.total_jobs(), 0);
        assert_eq!(t.arrivals_at(0), vec![]);
    }

    #[test]
    fn batch_classification() {
        // Rate-limited: arrivals at multiples of D with count <= D.
        let t = TraceBuilder::with_delay_bounds(&[4])
            .jobs(0, 0, 4)
            .jobs(4, 0, 2)
            .build();
        assert_eq!(t.batch_class(), BatchClass::RateLimited);
        // Batched but not rate-limited: burst of 5 > D = 4.
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(4, 0, 5).build();
        assert_eq!(t.batch_class(), BatchClass::Batched);
        // General: off-multiple arrival.
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(3, 0, 1).build();
        assert_eq!(t.batch_class(), BatchClass::General);
        // Empty trace is vacuously rate-limited.
        let t = Trace::new(ColorTable::from_delay_bounds(&[4]));
        assert_eq!(t.batch_class(), BatchClass::RateLimited);
    }

    #[test]
    fn batched_builder_pattern() {
        let t = TraceBuilder::with_delay_bounds(&[4])
            .batched_jobs(0, 2, 0, 12)
            .build();
        assert_eq!(t.arrivals_at(0), vec![(ColorId(0), 2)]);
        assert_eq!(t.arrivals_at(4), vec![(ColorId(0), 2)]);
        assert_eq!(t.arrivals_at(8), vec![(ColorId(0), 2)]);
        assert_eq!(t.arrivals_at(12), vec![]);
        // Start not on a multiple rounds up.
        let t = TraceBuilder::with_delay_bounds(&[4])
            .batched_jobs(0, 1, 5, 13)
            .build();
        assert_eq!(t.arrivals_at(8), vec![(ColorId(0), 1)]);
        assert_eq!(t.arrivals_at(12), vec![(ColorId(0), 1)]);
        assert_eq!(t.total_jobs(), 2);
    }

    #[test]
    fn binary_roundtrip() {
        let t = TraceBuilder::with_delay_bounds(&[2, 16])
            .jobs(0, 0, 7)
            .jobs(5, 1, 1)
            .jobs(16, 1, 1 << 40)
            .build();
        let decoded = Trace::from_bytes(t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn binary_truncation_detected() {
        let t = TraceBuilder::with_delay_bounds(&[2]).jobs(0, 0, 1).build();
        let bytes = t.to_bytes();
        let truncated = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(Trace::from_bytes(truncated), Err(Error::Codec(_))));
    }

    #[test]
    fn serde_json_roundtrip() {
        let t = TraceBuilder::with_delay_bounds(&[2, 4])
            .jobs(0, 0, 3)
            .jobs(4, 1, 2)
            .build();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
