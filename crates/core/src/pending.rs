//! The multiset of pending jobs.
//!
//! A job is *pending* from its arrival until it is executed or dropped (paper §2).
//! Jobs of one color are interchangeable up to their deadline, so pending jobs are
//! stored per color as a deadline-ordered run-length queue. Executing a color
//! always consumes its earliest-deadline pending job — an exchange argument shows
//! this is without loss of generality for every algorithm and for the offline
//! optimum (swapping a later-deadline execution for an earlier-deadline one of the
//! same color never invalidates a schedule).

use crate::color::ColorId;
use crate::time::Round;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Pending jobs of one color: a deadline-ordered queue of `(deadline, count)`
/// runs with strictly increasing deadlines.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct ColorQueue {
    runs: VecDeque<(Round, u64)>,
    total: u64,
}

impl ColorQueue {
    fn push(&mut self, deadline: Round, count: u64) {
        if count == 0 {
            return;
        }
        match self.runs.back_mut() {
            Some((d, n)) if *d == deadline => *n += count,
            Some((d, _)) => {
                assert!(
                    *d < deadline,
                    "arrivals must be pushed in nondecreasing deadline order"
                );
                self.runs.push_back((deadline, count));
            }
            None => self.runs.push_back((deadline, count)),
        }
        self.total += count;
    }

    fn pop_earliest(&mut self) -> Option<Round> {
        let (deadline, n) = self.runs.front_mut()?;
        let d = *deadline;
        *n -= 1;
        if *n == 0 {
            self.runs.pop_front();
        }
        self.total -= 1;
        Some(d)
    }

    /// Removes all jobs with deadline <= `round`; returns how many were removed.
    fn drop_expired(&mut self, round: Round) -> u64 {
        let mut dropped = 0;
        while let Some(&(d, n)) = self.runs.front() {
            if d <= round {
                dropped += n;
                self.runs.pop_front();
            } else {
                break;
            }
        }
        self.total -= dropped;
        dropped
    }

    fn drop_all(&mut self) -> u64 {
        let n = self.total;
        self.runs.clear();
        self.total = 0;
        n
    }
}

/// Pending-job state for all colors.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingJobs {
    queues: Vec<ColorQueue>,
}

impl PendingJobs {
    /// Creates pending state for `ncolors` colors (all initially empty).
    pub fn new(ncolors: usize) -> Self {
        PendingJobs {
            queues: vec![ColorQueue::default(); ncolors],
        }
    }

    /// Number of colors tracked.
    #[inline]
    pub fn ncolors(&self) -> usize {
        self.queues.len()
    }

    /// Adds `count` pending jobs of `color` with the given deadline. Deadlines per
    /// color must be pushed in nondecreasing order (guaranteed when arrivals are
    /// processed round by round, since deadline = round + D_ℓ).
    pub fn arrive(&mut self, color: ColorId, deadline: Round, count: u64) {
        self.queues[color.index()].push(deadline, count);
    }

    /// Number of pending jobs of `color`.
    #[inline]
    pub fn count(&self, color: ColorId) -> u64 {
        self.queues[color.index()].total
    }

    /// Whether `color` has no pending jobs (the paper's *idle* predicate).
    #[inline]
    pub fn is_idle(&self, color: ColorId) -> bool {
        self.count(color) == 0
    }

    /// Earliest deadline among pending jobs of `color`.
    #[inline]
    pub fn earliest_deadline(&self, color: ColorId) -> Option<Round> {
        self.queues[color.index()].runs.front().map(|&(d, _)| d)
    }

    /// Executes (removes) one earliest-deadline pending job of `color`; returns
    /// its deadline, or `None` if the color is idle.
    pub fn execute_one(&mut self, color: ColorId) -> Option<Round> {
        self.queues[color.index()].pop_earliest()
    }

    /// Drops every pending job with deadline ≤ `round` across all colors.
    /// Returns `(color, dropped_count)` pairs for colors that lost jobs, in color
    /// order.
    pub fn drop_expired(&mut self, round: Round) -> Vec<(ColorId, u64)> {
        let mut out = Vec::new();
        for (i, q) in self.queues.iter_mut().enumerate() {
            let n = q.drop_expired(round);
            if n > 0 {
                out.push((ColorId(i as u32), n));
            }
        }
        out
    }

    /// Drops every pending job of `color` regardless of deadline; returns the
    /// count. (Used by batched-setting bookkeeping where a color's entire batch
    /// expires at once.)
    pub fn drop_all_of(&mut self, color: ColorId) -> u64 {
        self.queues[color.index()].drop_all()
    }

    /// Total pending jobs over all colors.
    pub fn total(&self) -> u64 {
        self.queues.iter().map(|q| q.total).sum()
    }

    /// Colors with at least one pending job, in color order.
    pub fn nonidle_colors(&self) -> Vec<ColorId> {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| q.total > 0)
            .map(|(i, _)| ColorId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    #[test]
    fn arrive_execute_fifo_by_deadline() {
        let mut p = PendingJobs::new(2);
        p.arrive(c(0), 4, 2);
        p.arrive(c(0), 8, 1);
        assert_eq!(p.count(c(0)), 3);
        assert_eq!(p.earliest_deadline(c(0)), Some(4));
        assert_eq!(p.execute_one(c(0)), Some(4));
        assert_eq!(p.execute_one(c(0)), Some(4));
        assert_eq!(p.execute_one(c(0)), Some(8));
        assert_eq!(p.execute_one(c(0)), None);
        assert!(p.is_idle(c(0)));
    }

    #[test]
    fn coalesces_same_deadline() {
        let mut p = PendingJobs::new(1);
        p.arrive(c(0), 4, 2);
        p.arrive(c(0), 4, 3);
        assert_eq!(p.count(c(0)), 5);
        assert_eq!(p.queues[0].runs.len(), 1);
    }

    #[test]
    fn drop_expired_removes_due_jobs_only() {
        let mut p = PendingJobs::new(2);
        p.arrive(c(0), 4, 2);
        p.arrive(c(0), 8, 1);
        p.arrive(c(1), 4, 5);
        let dropped = p.drop_expired(4);
        assert_eq!(dropped, vec![(c(0), 2), (c(1), 5)]);
        assert_eq!(p.count(c(0)), 1);
        assert_eq!(p.count(c(1)), 0);
        assert_eq!(p.drop_expired(4), vec![]);
    }

    #[test]
    fn drop_all_of_clears_color() {
        let mut p = PendingJobs::new(1);
        p.arrive(c(0), 4, 2);
        p.arrive(c(0), 8, 3);
        assert_eq!(p.drop_all_of(c(0)), 5);
        assert!(p.is_idle(c(0)));
        assert_eq!(p.drop_all_of(c(0)), 0);
    }

    #[test]
    fn nonidle_colors_in_order() {
        let mut p = PendingJobs::new(3);
        p.arrive(c(2), 4, 1);
        p.arrive(c(0), 4, 1);
        assert_eq!(p.nonidle_colors(), vec![c(0), c(2)]);
        assert_eq!(p.total(), 2);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn decreasing_deadline_rejected() {
        let mut p = PendingJobs::new(1);
        p.arrive(c(0), 8, 1);
        p.arrive(c(0), 4, 1);
    }
}
