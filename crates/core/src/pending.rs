//! The multiset of pending jobs.
//!
//! A job is *pending* from its arrival until it is executed or dropped (paper §2).
//! Jobs of one color are interchangeable up to their deadline, so pending jobs are
//! stored per color as a deadline-ordered run-length queue. Executing a color
//! always consumes its earliest-deadline pending job — an exchange argument shows
//! this is without loss of generality for every algorithm and for the offline
//! optimum (swapping a later-deadline execution for an earlier-deadline one of the
//! same color never invalidates a schedule).
//!
//! # The expiry wheel
//!
//! The drop phase runs every round, but most rounds drop nothing. To avoid an
//! O(colors) scan per round, [`PendingJobs`] keeps a hierarchical *expiry
//! wheel* (a deadline calendar): every run of jobs registers its color under
//! its deadline when the run is created, and [`PendingJobs::drop_expired_into`]
//! visits only the colors registered under deadlines that just became due —
//! O(due) per round instead of O(colors). Entries are invalidated lazily: a
//! run that was fully executed (or cleared by [`PendingJobs::drop_all_of`])
//! leaves a stale entry behind, which costs one queue probe when its deadline
//! comes up and is then discarded.

use crate::color::ColorId;
use crate::time::Round;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Pending jobs of one color: a deadline-ordered queue of `(deadline, count)`
/// runs with strictly increasing deadlines.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct ColorQueue {
    runs: VecDeque<(Round, u64)>,
    total: u64,
}

impl ColorQueue {
    /// Pushes a run; returns `true` when a **new** run was created (rather
    /// than coalescing into the back run), i.e. when the deadline has not been
    /// registered with the expiry wheel yet.
    fn push(&mut self, deadline: Round, count: u64) -> bool {
        if count == 0 {
            return false;
        }
        let new_run = match self.runs.back_mut() {
            Some((d, n)) if *d == deadline => {
                *n += count;
                false
            }
            Some((d, _)) => {
                assert!(
                    *d < deadline,
                    "arrivals must be pushed in nondecreasing deadline order"
                );
                self.runs.push_back((deadline, count));
                true
            }
            None => {
                self.runs.push_back((deadline, count));
                true
            }
        };
        self.total += count;
        new_run
    }

    fn pop_earliest(&mut self) -> Option<Round> {
        let (deadline, n) = self.runs.front_mut()?;
        let d = *deadline;
        *n -= 1;
        if *n == 0 {
            self.runs.pop_front();
        }
        self.total -= 1;
        Some(d)
    }

    /// Removes all jobs with deadline <= `round`; returns how many were removed.
    fn drop_expired(&mut self, round: Round) -> u64 {
        let mut dropped = 0;
        while let Some(&(d, n)) = self.runs.front() {
            if d <= round {
                dropped += n;
                self.runs.pop_front();
            } else {
                break;
            }
        }
        self.total -= dropped;
        dropped
    }

    fn drop_all(&mut self) -> u64 {
        let n = self.total;
        self.runs.clear();
        self.total = 0;
        n
    }
}

/// Number of slots in the wheel's near ring (one 64-round window).
const WHEEL_SLOTS: u64 = 64;

/// Hierarchical expiry wheel: deadlines within the current 64-round window
/// live in the `near` ring (slot = deadline mod 64); later deadlines wait in
/// the sorted `far` calendar and cascade into the ring when their window
/// begins. Entries are *visit hints*, not ground truth: the per-color queues
/// decide what is actually due, so stale entries (from executed or cleared
/// runs) are harmless and cost one probe each.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DeadlineWheel {
    /// Every deadline < `cursor` has been drained.
    cursor: Round,
    /// `near[d % 64]` holds colors registered at deadline `d` for
    /// `d` in `[cursor, window_end)`.
    near: Vec<Vec<ColorId>>,
    /// Runs with deadline >= `window_end`, keyed by deadline.
    far: BTreeMap<Round, Vec<ColorId>>,
}

impl Default for DeadlineWheel {
    fn default() -> Self {
        DeadlineWheel {
            cursor: 0,
            near: vec![Vec::new(); WHEEL_SLOTS as usize],
            far: BTreeMap::new(),
        }
    }
}

impl DeadlineWheel {
    /// End (exclusive) of the 64-aligned window the near ring currently covers.
    #[inline]
    fn window_end(&self) -> Round {
        (self.cursor - self.cursor % WHEEL_SLOTS) + WHEEL_SLOTS
    }

    /// Registers one run of `color` expiring at `deadline`.
    fn register(&mut self, deadline: Round, color: ColorId) {
        // A deadline at or below the drained cursor (possible only through
        // direct API use, never through the engine's round loop) is clamped so
        // its color is still visited on the next drain.
        let d = deadline.max(self.cursor);
        if d < self.window_end() {
            self.near[(d % WHEEL_SLOTS) as usize].push(color);
        } else {
            self.far.entry(d).or_default().push(color);
        }
    }

    /// Drains every entry with deadline <= `round` into `due` (unsorted, with
    /// possible duplicates) and advances the cursor past `round`.
    fn advance(&mut self, round: Round, due: &mut Vec<ColorId>) {
        while self.cursor <= round {
            let slot = (self.cursor % WHEEL_SLOTS) as usize;
            due.append(&mut self.near[slot]);
            self.cursor += 1;
            if self.cursor.is_multiple_of(WHEEL_SLOTS) {
                // A new window [cursor, cursor + 64) begins: cascade the far
                // entries that now fit the ring. Every far key is >= the old
                // window end (= the new cursor), so slots are unambiguous.
                let end = self.cursor + WHEEL_SLOTS;
                while let Some((&d, _)) = self.far.iter().next() {
                    if d >= end {
                        break;
                    }
                    let colors = self.far.remove(&d).expect("key just observed");
                    self.near[(d % WHEEL_SLOTS) as usize].extend(colors);
                }
            }
        }
    }
}

/// Pending-job state for all colors.
///
/// `PartialEq` compares the logical content (the per-color queues) only: two
/// instances that reached the same jobs through different execute/drop
/// histories compare equal even when their wheels hold different stale
/// entries. Serialization captures the wheel too, so a deserialized instance
/// continues bit-identically.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PendingJobs {
    queues: Vec<ColorQueue>,
    wheel: DeadlineWheel,
    /// Reusable buffer of colors drained from the wheel in the current drop
    /// phase (transient; irrelevant for equality and snapshots).
    #[serde(skip)]
    due_scratch: Vec<ColorId>,
}

impl PartialEq for PendingJobs {
    fn eq(&self, other: &Self) -> bool {
        self.queues == other.queues
    }
}

impl Eq for PendingJobs {}

impl PendingJobs {
    /// Creates pending state for `ncolors` colors (all initially empty).
    pub fn new(ncolors: usize) -> Self {
        PendingJobs {
            queues: vec![ColorQueue::default(); ncolors],
            wheel: DeadlineWheel::default(),
            due_scratch: Vec::new(),
        }
    }

    /// Number of colors tracked.
    #[inline]
    pub fn ncolors(&self) -> usize {
        self.queues.len()
    }

    /// Adds `count` pending jobs of `color` with the given deadline. Deadlines per
    /// color must be pushed in nondecreasing order (guaranteed when arrivals are
    /// processed round by round, since deadline = round + D_ℓ).
    pub fn arrive(&mut self, color: ColorId, deadline: Round, count: u64) {
        if self.queues[color.index()].push(deadline, count) {
            self.wheel.register(deadline, color);
        }
    }

    /// Number of pending jobs of `color`.
    #[inline]
    pub fn count(&self, color: ColorId) -> u64 {
        self.queues[color.index()].total
    }

    /// Whether `color` has no pending jobs (the paper's *idle* predicate).
    #[inline]
    pub fn is_idle(&self, color: ColorId) -> bool {
        self.count(color) == 0
    }

    /// Earliest deadline among pending jobs of `color`.
    #[inline]
    pub fn earliest_deadline(&self, color: ColorId) -> Option<Round> {
        self.queues[color.index()].runs.front().map(|&(d, _)| d)
    }

    /// Executes (removes) one earliest-deadline pending job of `color`; returns
    /// its deadline, or `None` if the color is idle. (Any wheel entry for the
    /// consumed run is invalidated lazily.)
    pub fn execute_one(&mut self, color: ColorId) -> Option<Round> {
        self.queues[color.index()].pop_earliest()
    }

    /// Drops every pending job with deadline ≤ `round` across all colors,
    /// appending `(color, dropped_count)` pairs in ascending color order to
    /// `out` (which is cleared first). Visits only the colors the expiry wheel
    /// has registered as due — O(due), not O(colors).
    pub fn drop_expired_into(&mut self, round: Round, out: &mut Vec<(ColorId, u64)>) {
        out.clear();
        self.due_scratch.clear();
        self.wheel.advance(round, &mut self.due_scratch);
        self.due_scratch.sort_unstable();
        self.due_scratch.dedup();
        for &c in &self.due_scratch {
            let n = self.queues[c.index()].drop_expired(round);
            if n > 0 {
                out.push((c, n));
            }
        }
    }

    /// Allocating convenience wrapper around [`Self::drop_expired_into`].
    pub fn drop_expired(&mut self, round: Round) -> Vec<(ColorId, u64)> {
        let mut out = Vec::new();
        self.drop_expired_into(round, &mut out);
        out
    }

    /// Drops every pending job of `color` regardless of deadline; returns the
    /// count. (Used by batched-setting bookkeeping where a color's entire batch
    /// expires at once. Wheel entries for the cleared runs go stale and are
    /// skipped when their deadlines come up.)
    pub fn drop_all_of(&mut self, color: ColorId) -> u64 {
        self.queues[color.index()].drop_all()
    }

    /// Total pending jobs over all colors.
    pub fn total(&self) -> u64 {
        self.queues.iter().map(|q| q.total).sum()
    }

    /// Colors with at least one pending job, in color order.
    pub fn nonidle_colors(&self) -> Vec<ColorId> {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| q.total > 0)
            .map(|(i, _)| ColorId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    #[test]
    fn arrive_execute_fifo_by_deadline() {
        let mut p = PendingJobs::new(2);
        p.arrive(c(0), 4, 2);
        p.arrive(c(0), 8, 1);
        assert_eq!(p.count(c(0)), 3);
        assert_eq!(p.earliest_deadline(c(0)), Some(4));
        assert_eq!(p.execute_one(c(0)), Some(4));
        assert_eq!(p.execute_one(c(0)), Some(4));
        assert_eq!(p.execute_one(c(0)), Some(8));
        assert_eq!(p.execute_one(c(0)), None);
        assert!(p.is_idle(c(0)));
    }

    #[test]
    fn coalesces_same_deadline() {
        let mut p = PendingJobs::new(1);
        p.arrive(c(0), 4, 2);
        p.arrive(c(0), 4, 3);
        assert_eq!(p.count(c(0)), 5);
        assert_eq!(p.queues[0].runs.len(), 1);
    }

    #[test]
    fn drop_expired_removes_due_jobs_only() {
        let mut p = PendingJobs::new(2);
        p.arrive(c(0), 4, 2);
        p.arrive(c(0), 8, 1);
        p.arrive(c(1), 4, 5);
        let dropped = p.drop_expired(4);
        assert_eq!(dropped, vec![(c(0), 2), (c(1), 5)]);
        assert_eq!(p.count(c(0)), 1);
        assert_eq!(p.count(c(1)), 0);
        assert_eq!(p.drop_expired(4), vec![]);
    }

    #[test]
    fn drop_all_of_clears_color() {
        let mut p = PendingJobs::new(1);
        p.arrive(c(0), 4, 2);
        p.arrive(c(0), 8, 3);
        assert_eq!(p.drop_all_of(c(0)), 5);
        assert!(p.is_idle(c(0)));
        assert_eq!(p.drop_all_of(c(0)), 0);
    }

    #[test]
    fn nonidle_colors_in_order() {
        let mut p = PendingJobs::new(3);
        p.arrive(c(2), 4, 1);
        p.arrive(c(0), 4, 1);
        assert_eq!(p.nonidle_colors(), vec![c(0), c(2)]);
        assert_eq!(p.total(), 2);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn decreasing_deadline_rejected() {
        let mut p = PendingJobs::new(1);
        p.arrive(c(0), 8, 1);
        p.arrive(c(0), 4, 1);
    }

    #[test]
    fn stale_wheel_entries_are_harmless() {
        // Fully execute a run; its wheel entry must not produce a phantom drop.
        let mut p = PendingJobs::new(2);
        p.arrive(c(0), 3, 2);
        p.arrive(c(1), 3, 1);
        assert_eq!(p.execute_one(c(0)), Some(3));
        assert_eq!(p.execute_one(c(0)), Some(3));
        assert_eq!(p.drop_expired(3), vec![(c(1), 1)]);
        // drop_all_of leaves a stale far entry behind.
        let mut p = PendingJobs::new(1);
        p.arrive(c(0), 100, 4);
        assert_eq!(p.drop_all_of(c(0)), 4);
        for r in 0..=101 {
            assert_eq!(p.drop_expired(r), vec![]);
        }
    }

    #[test]
    fn re_arrival_at_same_deadline_after_execution() {
        // Run executed to empty, then a new run at the same deadline: the
        // duplicate wheel entry must report the drop exactly once.
        let mut p = PendingJobs::new(1);
        p.arrive(c(0), 5, 1);
        assert_eq!(p.execute_one(c(0)), Some(5));
        p.arrive(c(0), 5, 2);
        assert_eq!(p.drop_expired(5), vec![(c(0), 2)]);
        assert_eq!(p.total(), 0);
    }

    #[test]
    fn wheel_cascades_far_deadlines() {
        // Deadlines far beyond the near window must still fire on time.
        let mut p = PendingJobs::new(3);
        p.arrive(c(0), 63, 1);
        p.arrive(c(1), 64, 1);
        p.arrive(c(2), 1000, 7);
        for r in 0..63 {
            assert_eq!(p.drop_expired(r), vec![]);
        }
        assert_eq!(p.drop_expired(63), vec![(c(0), 1)]);
        assert_eq!(p.drop_expired(64), vec![(c(1), 1)]);
        for r in 65..1000 {
            assert_eq!(p.drop_expired(r), vec![]);
        }
        assert_eq!(p.drop_expired(1000), vec![(c(2), 7)]);
    }

    #[test]
    fn drop_expired_into_reuses_buffer() {
        let mut p = PendingJobs::new(2);
        p.arrive(c(0), 2, 3);
        let mut out = vec![(c(1), 99)]; // stale content must be cleared
        p.drop_expired_into(2, &mut out);
        assert_eq!(out, vec![(c(0), 3)]);
        p.drop_expired_into(3, &mut out);
        assert_eq!(out, vec![]);
    }

    #[test]
    fn equality_ignores_wheel_history() {
        // Same logical content via different histories: equal.
        let mut a = PendingJobs::new(2);
        a.arrive(c(0), 10, 2);
        a.arrive(c(1), 4, 1);
        a.drop_expired(4); // drains c1, advances the cursor
        let mut b = PendingJobs::new(2);
        b.arrive(c(0), 10, 2);
        assert_eq!(a, b);
        // Different logical content: unequal.
        b.arrive(c(1), 12, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn serde_roundtrip_preserves_wheel_behaviour() {
        let mut p = PendingJobs::new(3);
        p.arrive(c(0), 5, 2);
        p.arrive(c(1), 70, 1);
        p.arrive(c(2), 500, 3);
        assert_eq!(p.drop_expired(1), vec![]);
        let json = serde_json::to_string(&p).unwrap();
        let mut q: PendingJobs = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
        // The restored wheel keeps firing at the right rounds.
        for r in 2..5 {
            assert_eq!(q.drop_expired(r), vec![]);
        }
        assert_eq!(q.drop_expired(5), vec![(c(0), 2)]);
        assert_eq!(q.drop_expired(70), vec![(c(1), 1)]);
        assert_eq!(q.drop_expired(500), vec![(c(2), 3)]);
    }

    /// Differential check: the wheel-backed drop phase matches a naive
    /// linear-scan reference over a long randomized operation sequence.
    #[test]
    fn wheel_matches_linear_scan_reference() {
        // Simple deterministic LCG so the test needs no external RNG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        const NCOLORS: usize = 16;
        let mut wheel = PendingJobs::new(NCOLORS);
        // Fixed delay bound per color (as in real traces, where deadline =
        // round + D_ℓ keeps per-color deadlines nondecreasing).
        let bounds: Vec<u64> = (0..NCOLORS as u64).map(|i| 1 + (i * 37) % 130).collect();
        // Reference model: per-color sorted (deadline, count) lists.
        let mut model: Vec<Vec<(Round, u64)>> = vec![Vec::new(); NCOLORS];
        for round in 0..600u64 {
            // Drop phase both sides.
            let dropped = wheel.drop_expired(round);
            let mut expect = Vec::new();
            for (i, runs) in model.iter_mut().enumerate() {
                let n: u64 = runs.iter().filter(|&&(d, _)| d <= round).map(|&(_, k)| k).sum();
                runs.retain(|&(d, _)| d > round);
                if n > 0 {
                    expect.push((c(i as u32), n));
                }
            }
            assert_eq!(dropped, expect, "round {round}");
            // Random arrivals (deadline = round + per-color bound).
            for _ in 0..(next() % 4) {
                let color = (next() % NCOLORS as u64) as usize;
                let count = 1 + next() % 5;
                wheel.arrive(c(color as u32), round + bounds[color], count);
                let runs = &mut model[color];
                match runs.last_mut() {
                    Some(last) if last.0 == round + bounds[color] => last.1 += count,
                    _ => runs.push((round + bounds[color], count)),
                }
            }
            // Random executions.
            for _ in 0..(next() % 3) {
                let color = (next() % NCOLORS as u64) as usize;
                let got = wheel.execute_one(c(color as u32));
                let runs = &mut model[color];
                let want = runs.first_mut().map(|first| {
                    let d = first.0;
                    first.1 -= 1;
                    d
                });
                if let Some(&(_, 0)) = runs.first() {
                    runs.remove(0);
                }
                assert_eq!(got, want);
            }
            // Occasionally clear a color entirely.
            if next() % 19 == 0 {
                let color = (next() % NCOLORS as u64) as usize;
                let cleared = wheel.drop_all_of(c(color as u32));
                let want: u64 = model[color].iter().map(|&(_, k)| k).sum();
                model[color].clear();
                assert_eq!(cleared, want);
            }
            // Occasionally roundtrip through serde mid-sequence.
            if round % 97 == 0 {
                let json = serde_json::to_string(&wheel).unwrap();
                wheel = serde_json::from_str(&json).unwrap();
            }
        }
    }
}
