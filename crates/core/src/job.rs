//! Unit jobs.
//!
//! All jobs are unit-sized; a job is fully characterized by its color, arrival
//! round and deadline (paper §2). Because jobs of the same color arriving in the
//! same round are interchangeable, traces store *counts* per `(round, color)`
//! rather than individual job objects; [`Job`] exists for APIs that deal with
//! individual executions (the explicit-schedule checker and tests).

use crate::color::ColorId;
use crate::time::Round;
use serde::{Deserialize, Serialize};

/// One unit job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Job {
    /// Deadline (arrival + delay bound). Listed first so the derived ordering is
    /// earliest-deadline-first, matching the paper's job ranking (deadline, then
    /// delay bound, then the consistent order of colors).
    pub deadline: Round,
    /// Delay bound `D_ℓ` of the job's color (cached for ranking).
    pub delay_bound: u64,
    /// The job's color.
    pub color: ColorId,
    /// Arrival round.
    pub arrival: Round,
}

impl Job {
    /// Creates a job from its color metadata.
    pub fn new(color: ColorId, arrival: Round, delay_bound: u64) -> Self {
        assert!(delay_bound > 0, "delay bound must be positive");
        Job {
            deadline: arrival + delay_bound,
            delay_bound,
            color,
            arrival,
        }
    }

    /// Whether the job may execute in `round` (execution phase of rounds
    /// `arrival ..= deadline - 1`).
    #[inline]
    pub fn executable_in(&self, round: Round) -> bool {
        self.arrival <= round && round < self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_is_arrival_plus_delay() {
        let j = Job::new(ColorId(0), 8, 4);
        assert_eq!(j.deadline, 12);
        assert!(j.executable_in(8));
        assert!(j.executable_in(11));
        assert!(!j.executable_in(12));
        assert!(!j.executable_in(7));
    }

    #[test]
    fn ordering_is_edf_first() {
        let early = Job::new(ColorId(5), 0, 2); // deadline 2
        let late = Job::new(ColorId(0), 0, 4); // deadline 4
        assert!(early < late);
        // Same deadline: smaller delay bound first.
        let a = Job::new(ColorId(1), 2, 2); // deadline 4, D=2
        let b = Job::new(ColorId(0), 0, 4); // deadline 4, D=4
        assert!(a < b);
        // Same deadline and delay bound: consistent order of colors.
        let c = Job::new(ColorId(0), 0, 4);
        let d = Job::new(ColorId(1), 0, 4);
        assert!(c < d);
    }
}
