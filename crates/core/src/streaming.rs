//! A streaming driver: feed arrivals one round at a time.
//!
//! [`crate::Engine`] replays a complete [`crate::Trace`]; a deployed
//! scheduler instead sees requests arrive live. [`StreamingEngine`] exposes
//! exactly the same four-phase round semantics through a push API:
//!
//! ```
//! use rrs_core::prelude::*;
//! use rrs_core::streaming::StreamingEngine;
//!
//! struct Pin;
//! impl Policy for Pin {
//!     fn name(&self) -> String { "pin".into() }
//!     fn reconfigure(&mut self, _: Round, _: u32, v: &EngineView) -> CacheTarget {
//!         CacheTarget::singles(v.pending.nonidle_colors().into_iter().take(v.n))
//!     }
//! }
//!
//! let colors = ColorTable::from_delay_bounds(&[4]);
//! let mut engine = StreamingEngine::new(colors, Box::new(Pin), 2, CostModel::new(3)).unwrap();
//! engine.step(&[(ColorId(0), 3)]).unwrap();   // round 0: 3 jobs arrive
//! engine.step(&[]).unwrap();                  // round 1: nothing new
//! let result = engine.finish().unwrap();      // drain to the horizon
//! assert_eq!(result.executed + result.dropped_jobs, 3);
//! ```
//!
//! The equivalence test below pins `StreamingEngine` to [`crate::Engine`]:
//! pushing a trace round by round produces the identical [`RunResult`].

use crate::color::{ColorId, ColorTable};
use crate::cost::CostModel;
use crate::engine::{EngineView, Policy};
use crate::error::{Error, Result};
use crate::pending::PendingJobs;
use crate::resource::CacheState;
use crate::stats::RunResult;
use crate::time::{Round, Speed};
use serde::{Deserialize, Serialize};

/// Per-round outcome of a streaming step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// The round just simulated.
    pub round: Round,
    /// Jobs dropped in this round's drop phase.
    pub dropped: u64,
    /// Jobs executed in this round.
    pub executed: u64,
    /// Resource recolorings in this round.
    pub recolored: u64,
}

/// A serializable point-in-time capture of a [`StreamingEngine`]'s state.
///
/// Holds everything the engine itself owns: pending jobs, cache content, the
/// accumulated [`RunResult`], the round counter and the drain horizon. It does
/// **not** capture the policy — policies are arbitrary trait objects. Callers
/// that need bit-identical continuation after a restore must supply a policy
/// whose internal state matches the snapshot point: either a stateless policy,
/// or one rebuilt by replaying the same arrival log through a fresh engine
/// (every policy in this workspace is deterministic, so a replay reproduces
/// the state exactly — `rrs-service` uses precisely that scheme and verifies
/// the rebuilt engine against the stored snapshot).
///
/// `PartialEq` compares every field, which makes a snapshot double as a
/// determinism witness: replaying the same arrivals must reproduce an equal
/// snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Number of resources.
    pub n: usize,
    /// Reconfiguration cost Δ.
    pub delta: u64,
    /// Uni- or double-speed execution.
    pub speed: Speed,
    /// The next round to be simulated.
    pub round: Round,
    /// Largest deadline seen so far (how far `finish` must drain).
    pub max_deadline: Round,
    /// Pending jobs at the snapshot point.
    pub pending: PendingJobs,
    /// Cache content at the snapshot point.
    pub cache: CacheState,
    /// Accumulated results at the snapshot point.
    pub result: RunResult,
}

/// The streaming counterpart of [`crate::Engine`].
pub struct StreamingEngine {
    colors: ColorTable,
    policy: Box<dyn Policy>,
    n: usize,
    cost_model: CostModel,
    speed: Speed,
    pending: PendingJobs,
    cache: CacheState,
    result: RunResult,
    round: Round,
    /// Largest deadline seen so far (how far `finish` must drain).
    max_deadline: Round,
    /// Reusable drop-phase scratch (not part of snapshots: it is transient
    /// within a step and always cleared before use).
    dropped_scratch: Vec<(ColorId, u64)>,
}

impl StreamingEngine {
    /// Creates a streaming engine at round 0.
    pub fn new(
        colors: ColorTable,
        policy: Box<dyn Policy>,
        n: usize,
        cost_model: CostModel,
    ) -> Result<Self> {
        Self::with_speed(colors, policy, n, cost_model, Speed::Uni)
    }

    /// Creates a streaming engine with explicit speed.
    pub fn with_speed(
        colors: ColorTable,
        policy: Box<dyn Policy>,
        n: usize,
        cost_model: CostModel,
        speed: Speed,
    ) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidParameter(
                "streaming engine needs at least one resource".into(),
            ));
        }
        let ncolors = colors.len();
        let name = policy.name();
        Ok(StreamingEngine {
            colors,
            policy,
            n,
            cost_model,
            speed,
            pending: PendingJobs::new(ncolors),
            cache: CacheState::new(n),
            result: RunResult::new(name, n, cost_model.delta, ncolors),
            round: 0,
            max_deadline: 0,
            dropped_scratch: Vec::new(),
        })
    }

    /// The next round to be simulated.
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// Live view of accumulated results.
    pub fn partial_result(&self) -> &RunResult {
        &self.result
    }

    /// Number of currently pending jobs.
    pub fn pending_jobs(&self) -> u64 {
        self.pending.total()
    }

    /// The largest deadline seen so far — the last round [`Self::finish`]
    /// will simulate.
    pub fn drain_horizon(&self) -> Round {
        self.max_deadline
    }

    /// Captures the engine's own state (not the policy's; see
    /// [`EngineSnapshot`] for the contract).
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            n: self.n,
            delta: self.cost_model.delta,
            speed: self.speed,
            round: self.round,
            max_deadline: self.max_deadline,
            pending: self.pending.clone(),
            cache: self.cache.clone(),
            result: self.result.clone(),
        }
    }

    /// Rebuilds an engine from a snapshot and a policy.
    ///
    /// The caller is responsible for the policy's internal state matching the
    /// snapshot point (see [`EngineSnapshot`]); stateless policies always
    /// qualify. Continuation is then bit-identical to the run the snapshot
    /// was taken from.
    pub fn restore(
        colors: ColorTable,
        policy: Box<dyn Policy>,
        snapshot: EngineSnapshot,
    ) -> Result<Self> {
        if snapshot.n == 0 {
            return Err(Error::InvalidParameter(
                "streaming engine needs at least one resource".into(),
            ));
        }
        if snapshot.delta == 0 {
            return Err(Error::InvalidParameter(
                "snapshot has Δ = 0 (Δ must be positive)".into(),
            ));
        }
        if snapshot.cache.capacity() != snapshot.n {
            return Err(Error::InvalidParameter(format!(
                "snapshot cache capacity {} does not match n = {}",
                snapshot.cache.capacity(),
                snapshot.n
            )));
        }
        if snapshot.pending.ncolors() != colors.len() {
            return Err(Error::InvalidParameter(format!(
                "snapshot tracks {} colors but the color table has {}",
                snapshot.pending.ncolors(),
                colors.len()
            )));
        }
        Ok(StreamingEngine {
            colors,
            policy,
            n: snapshot.n,
            cost_model: CostModel::new(snapshot.delta),
            speed: snapshot.speed,
            pending: snapshot.pending,
            cache: snapshot.cache,
            result: snapshot.result,
            round: snapshot.round,
            max_deadline: snapshot.max_deadline,
            dropped_scratch: Vec::new(),
        })
    }

    /// Simulates one round with the given arrivals (`(color, count)` pairs in
    /// ascending color order).
    pub fn step(&mut self, arrivals: &[(ColorId, u64)]) -> Result<StepOutcome> {
        for w in arrivals.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(Error::InvalidParameter(
                    "arrivals must be sorted by ascending color".into(),
                ));
            }
        }
        if let Some(&(c, _)) = arrivals.iter().find(|&&(c, _)| c.index() >= self.colors.len()) {
            return Err(Error::UnknownColor(c));
        }
        let round = self.round;
        let executed_before = self.result.executed;
        let recolored_before = self.result.reconfig_events;

        // Phase 1: drop (into the engine's reusable scratch buffer).
        let mut dropped_list = std::mem::take(&mut self.dropped_scratch);
        self.pending.drop_expired_into(round, &mut dropped_list);
        let mut dropped = 0;
        for &(color, count) in &dropped_list {
            dropped += count;
            self.result
                .record_drops(color, count, self.colors.drop_cost(color));
        }
        {
            let view = EngineView::new(
                &self.pending,
                &self.cache,
                &self.colors,
                self.n,
                self.cost_model.delta,
            );
            self.policy.on_drop_phase(round, &dropped_list, &view);
        }
        self.dropped_scratch = dropped_list;
        // Phase 2: arrivals.
        for &(color, count) in arrivals {
            let deadline = round + self.colors.delay_bound(color);
            self.max_deadline = self.max_deadline.max(deadline);
            self.pending.arrive(color, deadline, count);
        }
        {
            let view = EngineView::new(
                &self.pending,
                &self.cache,
                &self.colors,
                self.n,
                self.cost_model.delta,
            );
            self.policy.on_arrival_phase(round, arrivals, &view);
        }
        // Phases 3–4.
        for mini in 0..self.speed.mini_rounds() {
            let target = {
                let view = EngineView::new(
                    &self.pending,
                    &self.cache,
                    &self.colors,
                    self.n,
                    self.cost_model.delta,
                );
                self.policy.reconfigure(round, mini, &view)
            };
            let recolored = self.cache.apply(&target).ok_or(Error::CacheOverflow {
                round,
                requested: target.size(),
                available: self.n,
            })?;
            self.result.record_reconfigs(recolored, self.cost_model.delta);
            for (color, copies) in target.iter() {
                for _ in 0..copies {
                    if self.pending.execute_one(color).is_some() {
                        self.result.record_execution(color);
                    }
                }
            }
        }
        self.round += 1;
        self.result.rounds = self.round;
        Ok(StepOutcome {
            round,
            dropped,
            executed: self.result.executed - executed_before,
            recolored: self.result.reconfig_events - recolored_before,
        })
    }

    /// Runs empty rounds through the drain horizon (the largest deadline seen
    /// so far), then returns the final result. Every job — including one that
    /// arrived in the final pushed round with the maximum delay bound — is
    /// executed or dropped by then, never silently lost.
    ///
    /// The drain deliberately does **not** stop early when the pending set
    /// empties: policies may keep reconfiguring on idle rounds, and a batch
    /// [`crate::Engine`] replay of the same arrivals simulates those rounds
    /// too. An early exit would report a different round count (and, for such
    /// policies, a different reconfiguration cost) than the batch run.
    pub fn finish(self) -> Result<RunResult> {
        let horizon = self.max_deadline;
        self.finish_to(horizon)
    }

    /// Runs empty rounds while `round <= horizon`, then returns the final
    /// result.
    ///
    /// Use this instead of [`Self::finish`] to match a batch replay exactly
    /// when the batch engine's horizon exceeds the streaming drain horizon:
    /// [`crate::Trace::horizon`] is the maximum deadline over *arrivals
    /// present in the trace*, which coincides with the drain horizon, but a
    /// caller comparing against an engine run over `0..=h` for any larger `h`
    /// can drain to the same `h` here.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] if `horizon` is smaller than the
    /// drain horizon while jobs are still pending — finishing there would
    /// silently lose them.
    pub fn finish_to(mut self, horizon: Round) -> Result<RunResult> {
        if horizon < self.max_deadline && self.pending.total() > 0 {
            return Err(Error::InvalidParameter(format!(
                "finish_to({horizon}) would lose {} pending jobs (drain horizon {})",
                self.pending.total(),
                self.max_deadline
            )));
        }
        while self.round <= horizon {
            self.step(&[])?;
        }
        Ok(self.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::resource::CacheTarget;
    use crate::trace::{Trace, TraceBuilder};

    /// A deterministic nontrivial policy for the equivalence test: cache the
    /// nonidle colors with the most pending work.
    struct TopPending;
    impl Policy for TopPending {
        fn name(&self) -> String {
            "top-pending".into()
        }
        fn reconfigure(&mut self, _r: Round, _m: u32, view: &EngineView) -> CacheTarget {
            let mut colors = view.pending.nonidle_colors();
            colors.sort_by_key(|&c| (std::cmp::Reverse(view.pending.count(c)), c));
            colors.truncate(view.n);
            CacheTarget::singles(colors)
        }
    }

    fn demo_trace() -> Trace {
        TraceBuilder::with_delay_bounds(&[4, 8, 2])
            .jobs(0, 0, 5)
            .jobs(0, 2, 2)
            .jobs(3, 1, 6)
            .jobs(8, 0, 1)
            .jobs(9, 2, 4)
            .build()
    }

    #[test]
    fn streaming_matches_batch_engine() {
        let trace = demo_trace();
        let mut batch_policy = TopPending;
        let batch = Engine::new()
            .run(&trace, &mut batch_policy, 3, CostModel::new(2))
            .unwrap();

        let mut streaming = StreamingEngine::new(
            trace.colors().clone(),
            Box::new(TopPending),
            3,
            CostModel::new(2),
        )
        .unwrap();
        for round in 0..=trace.last_arrival_round().unwrap() {
            streaming.step(&trace.arrivals_at(round)).unwrap();
        }
        let stream = streaming.finish().unwrap();
        assert_eq!(stream, batch, "streaming replay is bit-identical");
    }

    /// Regression test for the `finish` drain horizon: a job arriving in the
    /// *final* pushed round with the *maximum* delay bound must still be
    /// scheduled or counted dropped — never silently lost — and the drain
    /// must simulate exactly the rounds a batch replay would.
    #[test]
    fn finish_resolves_final_round_max_delay_job() {
        let bounds = [2u64, 16];
        // Color 1 (D = 16) arrives only in the last pushed round.
        let trace = TraceBuilder::with_delay_bounds(&bounds)
            .jobs(0, 0, 3)
            .jobs(5, 1, 4)
            .build();
        assert_eq!(trace.last_arrival_round(), Some(5));
        for policy in [true, false] {
            // Once with a policy that executes (TopPending), once with one
            // that never does (empty target) so every job must be dropped.
            struct Idle;
            impl Policy for Idle {
                fn name(&self) -> String {
                    "idle".into()
                }
                fn reconfigure(&mut self, _: Round, _: u32, _: &EngineView) -> CacheTarget {
                    CacheTarget::empty()
                }
            }
            let p: Box<dyn Policy> = if policy { Box::new(TopPending) } else { Box::new(Idle) };
            let mut s = StreamingEngine::new(
                trace.colors().clone(),
                p,
                1,
                CostModel::new(1),
            )
            .unwrap();
            for round in 0..=trace.last_arrival_round().unwrap() {
                s.step(&trace.arrivals_at(round)).unwrap();
            }
            assert_eq!(s.drain_horizon(), 5 + 16);
            let r = s.finish().unwrap();
            assert_eq!(
                r.executed + r.dropped_jobs,
                trace.total_jobs(),
                "no job silently lost (executing policy: {policy})"
            );
            assert_eq!(r.rounds, trace.horizon() + 1, "drains exactly to the horizon");
        }
    }

    #[test]
    fn finish_to_matches_longer_batch_horizon_and_rejects_lossy_ones() {
        let trace = demo_trace();
        let mut s = StreamingEngine::new(
            trace.colors().clone(),
            Box::new(TopPending),
            2,
            CostModel::new(2),
        )
        .unwrap();
        s.step(&trace.arrivals_at(0)).unwrap();
        let lossy = s.finish_to(0);
        assert!(lossy.is_err(), "finishing below the drain horizon loses jobs");

        let mut s = StreamingEngine::new(
            trace.colors().clone(),
            Box::new(TopPending),
            2,
            CostModel::new(2),
        )
        .unwrap();
        for round in 0..=trace.last_arrival_round().unwrap() {
            s.step(&trace.arrivals_at(round)).unwrap();
        }
        let r = s.finish_to(trace.horizon() + 7).unwrap();
        assert_eq!(r.rounds, trace.horizon() + 8);
        assert_eq!(r.executed + r.dropped_jobs, trace.total_jobs());
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        // TopPending is stateless, so a fresh instance is a valid companion
        // for any snapshot; stateful policies are covered by the replay-based
        // conformance suite in rrs-service.
        let trace = demo_trace();
        let mk = || {
            StreamingEngine::new(
                trace.colors().clone(),
                Box::new(TopPending),
                2,
                CostModel::new(3),
            )
            .unwrap()
        };
        let last = trace.last_arrival_round().unwrap();
        for cut in 0..=last {
            let mut full = mk();
            let mut prefix = mk();
            for round in 0..=last {
                if round <= cut {
                    prefix.step(&trace.arrivals_at(round)).unwrap();
                }
                full.step(&trace.arrivals_at(round)).unwrap();
            }
            let snap = prefix.snapshot();
            assert_eq!(snap.round, cut + 1);
            let mut restored = StreamingEngine::restore(
                trace.colors().clone(),
                Box::new(TopPending),
                snap.clone(),
            )
            .unwrap();
            assert_eq!(restored.snapshot(), snap, "restore is lossless");
            for round in cut + 1..=last {
                restored.step(&trace.arrivals_at(round)).unwrap();
            }
            let a = full.finish().unwrap();
            let b = restored.finish().unwrap();
            assert_eq!(a, b, "kill-and-restore at round {cut} diverged");
        }
    }

    #[test]
    fn restore_validates_snapshot_shape() {
        let colors = crate::color::ColorTable::from_delay_bounds(&[4]);
        let s = StreamingEngine::new(
            colors.clone(),
            Box::new(TopPending),
            2,
            CostModel::new(1),
        )
        .unwrap();
        let snap = s.snapshot();
        // Wrong color table arity.
        let bad = crate::color::ColorTable::from_delay_bounds(&[4, 8]);
        assert!(StreamingEngine::restore(bad, Box::new(TopPending), snap.clone()).is_err());
        // Corrupted resource count.
        let mut corrupt = snap.clone();
        corrupt.n = 0;
        assert!(StreamingEngine::restore(colors.clone(), Box::new(TopPending), corrupt).is_err());
        let mut corrupt = snap;
        corrupt.n = 3; // cache capacity still 2
        assert!(StreamingEngine::restore(colors, Box::new(TopPending), corrupt).is_err());
    }

    #[test]
    fn step_outcomes_add_up() {
        let trace = demo_trace();
        let mut s = StreamingEngine::new(
            trace.colors().clone(),
            Box::new(TopPending),
            2,
            CostModel::new(1),
        )
        .unwrap();
        let mut executed = 0;
        let mut dropped = 0;
        for round in 0..=trace.horizon() {
            let out = s.step(&trace.arrivals_at(round)).unwrap();
            executed += out.executed;
            dropped += out.dropped;
            assert_eq!(out.round, round);
        }
        assert_eq!(executed + dropped, trace.total_jobs());
        assert_eq!(s.pending_jobs(), 0);
    }

    #[test]
    fn finish_drains_remaining_work() {
        let colors = crate::color::ColorTable::from_delay_bounds(&[8]);
        let mut s =
            StreamingEngine::new(colors, Box::new(TopPending), 1, CostModel::new(1)).unwrap();
        s.step(&[(ColorId(0), 5)]).unwrap();
        assert!(s.pending_jobs() > 0);
        let r = s.finish().unwrap();
        assert_eq!(r.executed + r.dropped_jobs, 5);
    }

    #[test]
    fn rejects_bad_arrivals() {
        let colors = crate::color::ColorTable::from_delay_bounds(&[4]);
        let mut s =
            StreamingEngine::new(colors, Box::new(TopPending), 1, CostModel::new(1)).unwrap();
        assert!(s.step(&[(ColorId(7), 1)]).is_err(), "unknown color");
        let colors = crate::color::ColorTable::from_delay_bounds(&[4, 4]);
        let mut s =
            StreamingEngine::new(colors, Box::new(TopPending), 1, CostModel::new(1)).unwrap();
        assert!(
            s.step(&[(ColorId(1), 1), (ColorId(0), 1)]).is_err(),
            "unsorted arrivals"
        );
    }

    #[test]
    fn partial_result_is_live() {
        let colors = crate::color::ColorTable::from_delay_bounds(&[4]);
        let mut s =
            StreamingEngine::new(colors, Box::new(TopPending), 1, CostModel::new(3)).unwrap();
        s.step(&[(ColorId(0), 2)]).unwrap();
        assert_eq!(s.partial_result().executed, 1);
        assert_eq!(s.partial_result().cost.reconfig, 3);
        assert_eq!(s.current_round(), 1);
    }
}
