//! A streaming driver: feed arrivals one round at a time.
//!
//! [`crate::Engine`] replays a complete [`crate::Trace`]; a deployed
//! scheduler instead sees requests arrive live. [`StreamingEngine`] exposes
//! exactly the same four-phase round semantics through a push API:
//!
//! ```
//! use rrs_core::prelude::*;
//! use rrs_core::streaming::StreamingEngine;
//!
//! struct Pin;
//! impl Policy for Pin {
//!     fn name(&self) -> String { "pin".into() }
//!     fn reconfigure(&mut self, _: Round, _: u32, v: &EngineView) -> CacheTarget {
//!         CacheTarget::singles(v.pending.nonidle_colors().into_iter().take(v.n))
//!     }
//! }
//!
//! let colors = ColorTable::from_delay_bounds(&[4]);
//! let mut engine = StreamingEngine::new(colors, Box::new(Pin), 2, CostModel::new(3)).unwrap();
//! engine.step(&[(ColorId(0), 3)]).unwrap();   // round 0: 3 jobs arrive
//! engine.step(&[]).unwrap();                  // round 1: nothing new
//! let result = engine.finish().unwrap();      // drain to the horizon
//! assert_eq!(result.executed + result.dropped_jobs, 3);
//! ```
//!
//! The equivalence test below pins `StreamingEngine` to [`crate::Engine`]:
//! pushing a trace round by round produces the identical [`RunResult`].

use crate::color::{ColorId, ColorTable};
use crate::cost::CostModel;
use crate::engine::{EngineView, Policy};
use crate::error::{Error, Result};
use crate::pending::PendingJobs;
use crate::resource::CacheState;
use crate::stats::RunResult;
use crate::time::{Round, Speed};

/// Per-round outcome of a streaming step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// The round just simulated.
    pub round: Round,
    /// Jobs dropped in this round's drop phase.
    pub dropped: u64,
    /// Jobs executed in this round.
    pub executed: u64,
    /// Resource recolorings in this round.
    pub recolored: u64,
}

/// The streaming counterpart of [`crate::Engine`].
pub struct StreamingEngine {
    colors: ColorTable,
    policy: Box<dyn Policy>,
    n: usize,
    cost_model: CostModel,
    speed: Speed,
    pending: PendingJobs,
    cache: CacheState,
    result: RunResult,
    round: Round,
    /// Largest deadline seen so far (how far `finish` must drain).
    max_deadline: Round,
}

impl StreamingEngine {
    /// Creates a streaming engine at round 0.
    pub fn new(
        colors: ColorTable,
        policy: Box<dyn Policy>,
        n: usize,
        cost_model: CostModel,
    ) -> Result<Self> {
        Self::with_speed(colors, policy, n, cost_model, Speed::Uni)
    }

    /// Creates a streaming engine with explicit speed.
    pub fn with_speed(
        colors: ColorTable,
        policy: Box<dyn Policy>,
        n: usize,
        cost_model: CostModel,
        speed: Speed,
    ) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidParameter(
                "streaming engine needs at least one resource".into(),
            ));
        }
        let ncolors = colors.len();
        let name = policy.name();
        Ok(StreamingEngine {
            colors,
            policy,
            n,
            cost_model,
            speed,
            pending: PendingJobs::new(ncolors),
            cache: CacheState::new(n),
            result: RunResult::new(name, n, cost_model.delta, ncolors),
            round: 0,
            max_deadline: 0,
        })
    }

    /// The next round to be simulated.
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// Live view of accumulated results.
    pub fn partial_result(&self) -> &RunResult {
        &self.result
    }

    /// Number of currently pending jobs.
    pub fn pending_jobs(&self) -> u64 {
        self.pending.total()
    }

    /// Simulates one round with the given arrivals (`(color, count)` pairs in
    /// ascending color order).
    pub fn step(&mut self, arrivals: &[(ColorId, u64)]) -> Result<StepOutcome> {
        for w in arrivals.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(Error::InvalidParameter(
                    "arrivals must be sorted by ascending color".into(),
                ));
            }
        }
        if let Some(&(c, _)) = arrivals.iter().find(|&&(c, _)| c.index() >= self.colors.len()) {
            return Err(Error::UnknownColor(c));
        }
        let round = self.round;
        let executed_before = self.result.executed;
        let recolored_before = self.result.reconfig_events;

        // Phase 1: drop.
        let dropped_list = self.pending.drop_expired(round);
        let mut dropped = 0;
        for &(color, count) in &dropped_list {
            dropped += count;
            self.result
                .record_drops(color, count, self.colors.drop_cost(color));
        }
        {
            let view = EngineView {
                pending: &self.pending,
                cache: &self.cache,
                colors: &self.colors,
                n: self.n,
                delta: self.cost_model.delta,
            };
            self.policy.on_drop_phase(round, &dropped_list, &view);
        }
        // Phase 2: arrivals.
        for &(color, count) in arrivals {
            let deadline = round + self.colors.delay_bound(color);
            self.max_deadline = self.max_deadline.max(deadline);
            self.pending.arrive(color, deadline, count);
        }
        {
            let view = EngineView {
                pending: &self.pending,
                cache: &self.cache,
                colors: &self.colors,
                n: self.n,
                delta: self.cost_model.delta,
            };
            self.policy.on_arrival_phase(round, arrivals, &view);
        }
        // Phases 3–4.
        for mini in 0..self.speed.mini_rounds() {
            let target = {
                let view = EngineView {
                    pending: &self.pending,
                    cache: &self.cache,
                    colors: &self.colors,
                    n: self.n,
                    delta: self.cost_model.delta,
                };
                self.policy.reconfigure(round, mini, &view)
            };
            let recolored = self.cache.apply(&target).ok_or(Error::CacheOverflow {
                round,
                requested: target.size(),
                available: self.n,
            })?;
            self.result.record_reconfigs(recolored, self.cost_model.delta);
            for (color, copies) in target.iter() {
                for _ in 0..copies {
                    if self.pending.execute_one(color).is_some() {
                        self.result.record_execution(color);
                    }
                }
            }
        }
        self.round += 1;
        self.result.rounds = self.round;
        Ok(StepOutcome {
            round,
            dropped,
            executed: self.result.executed - executed_before,
            recolored: self.result.reconfig_events - recolored_before,
        })
    }

    /// Runs empty rounds until every pending job has been executed or
    /// dropped, then returns the final result.
    pub fn finish(mut self) -> Result<RunResult> {
        while self.round <= self.max_deadline && self.pending.total() > 0 {
            self.step(&[])?;
        }
        Ok(self.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::resource::CacheTarget;
    use crate::trace::{Trace, TraceBuilder};

    /// A deterministic nontrivial policy for the equivalence test: cache the
    /// nonidle colors with the most pending work.
    struct TopPending;
    impl Policy for TopPending {
        fn name(&self) -> String {
            "top-pending".into()
        }
        fn reconfigure(&mut self, _r: Round, _m: u32, view: &EngineView) -> CacheTarget {
            let mut colors = view.pending.nonidle_colors();
            colors.sort_by_key(|&c| (std::cmp::Reverse(view.pending.count(c)), c));
            colors.truncate(view.n);
            CacheTarget::singles(colors)
        }
    }

    fn demo_trace() -> Trace {
        TraceBuilder::with_delay_bounds(&[4, 8, 2])
            .jobs(0, 0, 5)
            .jobs(0, 2, 2)
            .jobs(3, 1, 6)
            .jobs(8, 0, 1)
            .jobs(9, 2, 4)
            .build()
    }

    #[test]
    fn streaming_matches_batch_engine() {
        let trace = demo_trace();
        let mut batch_policy = TopPending;
        let batch = Engine::new()
            .run(&trace, &mut batch_policy, 3, CostModel::new(2))
            .unwrap();

        let mut streaming = StreamingEngine::new(
            trace.colors().clone(),
            Box::new(TopPending),
            3,
            CostModel::new(2),
        )
        .unwrap();
        for round in 0..=trace.last_arrival_round().unwrap() {
            streaming.step(&trace.arrivals_at(round)).unwrap();
        }
        let stream = streaming.finish().unwrap();
        assert_eq!(stream.cost, batch.cost);
        assert_eq!(stream.executed, batch.executed);
        assert_eq!(stream.dropped_jobs, batch.dropped_jobs);
        assert_eq!(stream.drops_by_color, batch.drops_by_color);
    }

    #[test]
    fn step_outcomes_add_up() {
        let trace = demo_trace();
        let mut s = StreamingEngine::new(
            trace.colors().clone(),
            Box::new(TopPending),
            2,
            CostModel::new(1),
        )
        .unwrap();
        let mut executed = 0;
        let mut dropped = 0;
        for round in 0..=trace.horizon() {
            let out = s.step(&trace.arrivals_at(round)).unwrap();
            executed += out.executed;
            dropped += out.dropped;
            assert_eq!(out.round, round);
        }
        assert_eq!(executed + dropped, trace.total_jobs());
        assert_eq!(s.pending_jobs(), 0);
    }

    #[test]
    fn finish_drains_remaining_work() {
        let colors = crate::color::ColorTable::from_delay_bounds(&[8]);
        let mut s =
            StreamingEngine::new(colors, Box::new(TopPending), 1, CostModel::new(1)).unwrap();
        s.step(&[(ColorId(0), 5)]).unwrap();
        assert!(s.pending_jobs() > 0);
        let r = s.finish().unwrap();
        assert_eq!(r.executed + r.dropped_jobs, 5);
    }

    #[test]
    fn rejects_bad_arrivals() {
        let colors = crate::color::ColorTable::from_delay_bounds(&[4]);
        let mut s =
            StreamingEngine::new(colors, Box::new(TopPending), 1, CostModel::new(1)).unwrap();
        assert!(s.step(&[(ColorId(7), 1)]).is_err(), "unknown color");
        let colors = crate::color::ColorTable::from_delay_bounds(&[4, 4]);
        let mut s =
            StreamingEngine::new(colors, Box::new(TopPending), 1, CostModel::new(1)).unwrap();
        assert!(
            s.step(&[(ColorId(1), 1), (ColorId(0), 1)]).is_err(),
            "unsorted arrivals"
        );
    }

    #[test]
    fn partial_result_is_live() {
        let colors = crate::color::ColorTable::from_delay_bounds(&[4]);
        let mut s =
            StreamingEngine::new(colors, Box::new(TopPending), 1, CostModel::new(3)).unwrap();
        s.step(&[(ColorId(0), 2)]).unwrap();
        assert_eq!(s.partial_result().executed, 1);
        assert_eq!(s.partial_result().cost.reconfig, 3);
        assert_eq!(s.current_round(), 1);
    }
}
