//! # rrs-core — model and simulation engine for reconfigurable resource scheduling
//!
//! This crate implements the problem model of Plaxton, Sun, Tiwari and Vin,
//! *Reconfigurable Resource Scheduling with Variable Delay Bounds* (the
//! variable-delay-bound member of the reconfigurable resource scheduling class
//! introduced at SPAA 2006):
//!
//! * unit **jobs**, each with a *color* (service category), an arrival round and a
//!   per-color *delay bound* `D_ℓ` — a job must execute before `arrival + D_ℓ` or be
//!   dropped at unit cost ([`Job`], [`ColorTable`]);
//! * **resources** (a *cache* of configuration slots), each configured to one color
//!   (initially *black*, i.e. unconfigured) and reconfigurable at fixed cost `Δ`
//!   ([`CacheState`], [`CostModel`]);
//! * time proceeds in **rounds** of four phases — drop, arrival, reconfiguration,
//!   execution ([`Phase`], [`Engine`]); *double-speed* schedules repeat the
//!   reconfiguration and execution phases (two *mini-rounds* per round).
//!
//! The [`Engine`] runs any [`Policy`] (an online reconfiguration scheme) over a
//! [`Trace`] (a request sequence) and produces a [`RunResult`] with full cost
//! accounting, plus an optional [`ExplicitSchedule`] that can be independently
//! re-validated and re-costed by [`schedule::check_schedule`].
//!
//! In the paper's `[reconfig | drop | delay | batch]` notation this crate models
//! `[Δ | 1 | D_ℓ | 1]` and its batched (`[Δ | 1 | D_ℓ | D_ℓ]`) and rate-limited
//! special cases; see [`Trace::batch_class`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod color;
pub mod cost;
pub mod engine;
pub mod error;
pub mod job;
pub mod latency;
pub mod metrics;
pub mod normalize;
pub mod pending;
pub mod resource;
pub mod schedule;
pub mod stats;
pub mod streaming;
pub mod time;
pub mod trace;

pub use color::{ColorId, ColorInfo, ColorTable};
pub use cost::{Cost, CostModel};
pub use engine::{Engine, EngineOptions, EngineView, Policy};
pub use error::{Error, Result};
pub use job::Job;
pub use latency::LatencyHistogram;
pub use metrics::{run_objectives, schedule_objectives, ObjectiveMetrics};
pub use pending::PendingJobs;
pub use resource::{CacheState, CacheTarget};
pub use schedule::{check_schedule, ExplicitSchedule, ScheduleStep};
pub use stats::{PerfCounters, RunResult};
pub use streaming::{EngineSnapshot, StepOutcome, StreamingEngine};
pub use time::{Phase, Round, Speed};
pub use trace::{Arrival, BatchClass, Trace, TraceBuilder};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::color::{ColorId, ColorInfo, ColorTable};
    pub use crate::cost::{Cost, CostModel};
    pub use crate::engine::{Engine, EngineOptions, EngineView, Policy};
    pub use crate::error::{Error, Result};
    pub use crate::job::Job;
    pub use crate::pending::PendingJobs;
    pub use crate::resource::{CacheState, CacheTarget};
    pub use crate::stats::{PerfCounters, RunResult};
    pub use crate::time::{Phase, Round, Speed};
    pub use crate::trace::{Arrival, BatchClass, Trace, TraceBuilder};
}
