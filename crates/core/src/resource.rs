//! Resource (cache) state.
//!
//! The paper views the `n` resources as a cache: resource `i` is location `i`,
//! each location caches one color, and reconfiguring location `i` to color `ℓ` is
//! caching `ℓ` at `i` at cost Δ (paper §3.1). Locations are initially *black*
//! (caching nothing).
//!
//! Policies describe the desired cache content as a [`CacheTarget`]: a multiset of
//! colors of size at most `n` (a color may appear several times — the paper's
//! algorithms cache each color at two locations). The engine charges Δ for every
//! location that must *gain* a color it did not hold; vacating a location (back to
//! black) is free, matching the paper where evictions are free and insertions pay.

use crate::color::ColorId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Desired cache content: a multiset of colors, total multiplicity ≤ n.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheTarget {
    /// Multiplicity per color (only nonzero entries). BTreeMap for deterministic
    /// order.
    copies: BTreeMap<ColorId, u32>,
}

impl CacheTarget {
    /// An empty target (all locations black).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a target caching each listed color once.
    pub fn singles<I: IntoIterator<Item = ColorId>>(colors: I) -> Self {
        let mut t = Self::default();
        for c in colors {
            t.add(c, 1);
        }
        t
    }

    /// Builds a target caching each listed color `k` times (the paper's
    /// replication invariant uses `k = 2`).
    pub fn replicated<I: IntoIterator<Item = ColorId>>(colors: I, k: u32) -> Self {
        let mut t = Self::default();
        for c in colors {
            t.add(c, k);
        }
        t
    }

    /// Adds `k` copies of `color`.
    pub fn add(&mut self, color: ColorId, k: u32) {
        if k > 0 {
            *self.copies.entry(color).or_insert(0) += k;
        }
    }

    /// Total number of occupied locations.
    pub fn size(&self) -> usize {
        self.copies.values().map(|&k| k as usize).sum()
    }

    /// Number of copies of `color`.
    pub fn copies_of(&self, color: ColorId) -> u32 {
        self.copies.get(&color).copied().unwrap_or(0)
    }

    /// Distinct colors in the target, ascending.
    pub fn distinct(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.copies.keys().copied()
    }

    /// `(color, copies)` pairs, ascending by color.
    pub fn iter(&self) -> impl Iterator<Item = (ColorId, u32)> + '_ {
        self.copies.iter().map(|(&c, &k)| (c, k))
    }

    /// Whether the target contains `color` at least once.
    pub fn contains(&self, color: ColorId) -> bool {
        self.copies.contains_key(&color)
    }
}

impl FromIterator<ColorId> for CacheTarget {
    fn from_iter<I: IntoIterator<Item = ColorId>>(iter: I) -> Self {
        Self::singles(iter)
    }
}

/// The current cache content (same representation as a target, plus capacity).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheState {
    n: usize,
    content: CacheTarget,
}

impl CacheState {
    /// Creates an all-black cache of `n` locations.
    pub fn new(n: usize) -> Self {
        CacheState {
            n,
            content: CacheTarget::empty(),
        }
    }

    /// Number of locations.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Current content as a multiset.
    #[inline]
    pub fn content(&self) -> &CacheTarget {
        &self.content
    }

    /// Number of cached copies of `color`.
    #[inline]
    pub fn copies_of(&self, color: ColorId) -> u32 {
        self.content.copies_of(color)
    }

    /// Whether `color` is cached at least once.
    #[inline]
    pub fn contains(&self, color: ColorId) -> bool {
        self.content.contains(color)
    }

    /// Applies `target`, returning the number of locations that had to be
    /// recolored (each costs Δ). A location is recolored iff the target needs
    /// more copies of some color than currently cached; surplus copies are
    /// vacated for free.
    ///
    /// Returns `None` (and leaves the state unchanged) if `target.size() > n`.
    pub fn apply(&mut self, target: &CacheTarget) -> Option<u64> {
        if target.size() > self.n {
            return None;
        }
        let mut recolored = 0u64;
        for (color, &want) in target.copies.iter() {
            let have = self.content.copies_of(*color);
            if want > have {
                recolored += u64::from(want - have);
            }
        }
        self.content = target.clone();
        Some(recolored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    #[test]
    fn target_multiset_ops() {
        let mut t = CacheTarget::empty();
        t.add(c(1), 2);
        t.add(c(0), 1);
        t.add(c(1), 1);
        assert_eq!(t.size(), 4);
        assert_eq!(t.copies_of(c(1)), 3);
        assert_eq!(t.copies_of(c(9)), 0);
        assert!(t.contains(c(0)));
        let d: Vec<ColorId> = t.distinct().collect();
        assert_eq!(d, vec![c(0), c(1)]);
    }

    #[test]
    fn replicated_builder() {
        let t = CacheTarget::replicated([c(0), c(2)], 2);
        assert_eq!(t.size(), 4);
        assert_eq!(t.copies_of(c(0)), 2);
        assert_eq!(t.copies_of(c(2)), 2);
    }

    #[test]
    fn apply_charges_only_gained_copies() {
        let mut s = CacheState::new(4);
        // Empty -> {a, a, b}: 3 recolorings.
        let t1 = CacheTarget::replicated([c(0)], 2).tap_add(c(1), 1);
        assert_eq!(s.apply(&t1), Some(3));
        // {a,a,b} -> {a,b,b}: gain one b, drop one a: 1 recoloring.
        let t2 = CacheTarget::singles([c(0)]).tap_add(c(1), 2);
        assert_eq!(s.apply(&t2), Some(1));
        // Unchanged target: free.
        assert_eq!(s.apply(&t2.clone()), Some(0));
        // Shrinking is free.
        assert_eq!(s.apply(&CacheTarget::empty()), Some(0));
        // Re-adding after vacating costs again.
        assert_eq!(s.apply(&CacheTarget::singles([c(0)])), Some(1));
    }

    #[test]
    fn apply_rejects_overflow() {
        let mut s = CacheState::new(2);
        let t = CacheTarget::replicated([c(0), c(1)], 2);
        assert_eq!(s.apply(&t), None);
        assert_eq!(s.content().size(), 0, "state unchanged on rejection");
    }

    // Small test helper: add-and-return for fluent construction.
    trait TapAdd {
        fn tap_add(self, c: ColorId, k: u32) -> Self;
    }
    impl TapAdd for CacheTarget {
        fn tap_add(mut self, c: ColorId, k: u32) -> Self {
            self.add(c, k);
            self
        }
    }
}
