//! Colors (job categories) and the per-color delay-bound table.
//!
//! Every job belongs to a *non-black* color `ℓ` with a positive integer delay bound
//! `D_ℓ` (paper §2). Resources may additionally be *black* (unconfigured); black is
//! not a job color and is represented by `Option<ColorId>::None` in
//! [`crate::resource::CacheState`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense index identifying a color (service category).
///
/// Colors are numbered `0..table.len()` within a [`ColorTable`]. The numeric order
/// of ids doubles as the paper's "consistent order of colors" used to break ties in
/// every ranking scheme, so all algorithms in this workspace are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColorId(pub u32);

impl ColorId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ColorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Static metadata of one color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColorInfo {
    /// The per-color delay bound `D_ℓ` (a positive integer). A job of this color
    /// arriving in round `k` has deadline `k + D_ℓ` and may execute in rounds
    /// `k ..= k + D_ℓ - 1`.
    pub delay_bound: u64,
    /// The per-color drop cost `c_ℓ` (a positive integer). The supplied
    /// paper's main problem uses unit drop costs (the default); the companion
    /// SPAA 2006 variant uses variable drop costs, which `rrs-uniform`
    /// exercises through this field.
    #[serde(default = "default_drop_cost")]
    pub drop_cost: u64,
}

fn default_drop_cost() -> u64 {
    1
}

impl ColorInfo {
    /// Creates a color with the given delay bound and unit drop cost.
    ///
    /// # Panics
    /// Panics if `delay_bound == 0` (the paper requires positive delay bounds).
    pub fn new(delay_bound: u64) -> Self {
        Self::with_drop_cost(delay_bound, 1)
    }

    /// Creates a color with an explicit drop cost `c_ℓ`.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn with_drop_cost(delay_bound: u64, drop_cost: u64) -> Self {
        assert!(delay_bound > 0, "delay bound must be a positive integer");
        assert!(drop_cost > 0, "drop cost must be a positive integer");
        ColorInfo {
            delay_bound,
            drop_cost,
        }
    }

    /// Whether the delay bound is a power of two (required by the core algorithms
    /// of paper §3–§4; §5.3 lifts the restriction via rounding).
    #[inline]
    pub fn is_pow2(&self) -> bool {
        self.delay_bound.is_power_of_two()
    }
}

/// The set of colors of an instance, indexed by [`ColorId`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColorTable {
    colors: Vec<ColorInfo>,
}

impl ColorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table directly from a list of delay bounds.
    pub fn from_delay_bounds(bounds: &[u64]) -> Self {
        let mut t = Self::new();
        for &b in bounds {
            t.push(ColorInfo::new(b));
        }
        t
    }

    /// Adds a color and returns its id.
    pub fn push(&mut self, info: ColorInfo) -> ColorId {
        let id = ColorId(u32::try_from(self.colors.len()).expect("too many colors"));
        self.colors.push(info);
        id
    }

    /// Number of colors.
    #[inline]
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the table has no colors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Metadata of color `id`.
    ///
    /// # Panics
    /// Panics if `id` is not in the table.
    #[inline]
    pub fn info(&self, id: ColorId) -> ColorInfo {
        self.colors[id.index()]
    }

    /// The delay bound `D_ℓ` of color `id`.
    #[inline]
    pub fn delay_bound(&self, id: ColorId) -> u64 {
        self.colors[id.index()].delay_bound
    }

    /// The drop cost `c_ℓ` of color `id`.
    #[inline]
    pub fn drop_cost(&self, id: ColorId) -> u64 {
        self.colors[id.index()].drop_cost
    }

    /// Whether every color has the paper's unit drop cost.
    pub fn unit_drop_costs(&self) -> bool {
        self.colors.iter().all(|c| c.drop_cost == 1)
    }

    /// The smallest drop cost, or 0 for an empty table.
    pub fn min_drop_cost(&self) -> u64 {
        self.colors.iter().map(|c| c.drop_cost).min().unwrap_or(0)
    }

    /// Iterates over `(id, info)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ColorId, ColorInfo)> + '_ {
        self.colors
            .iter()
            .enumerate()
            .map(|(i, &info)| (ColorId(i as u32), info))
    }

    /// All color ids in the consistent (ascending) order.
    pub fn ids(&self) -> impl Iterator<Item = ColorId> {
        (0..self.colors.len() as u32).map(ColorId)
    }

    /// Whether every delay bound is a power of two.
    pub fn all_pow2(&self) -> bool {
        self.colors.iter().all(|c| c.is_pow2())
    }

    /// The largest delay bound, or 0 for an empty table.
    pub fn max_delay_bound(&self) -> u64 {
        self.colors.iter().map(|c| c.delay_bound).max().unwrap_or(0)
    }

    /// The smallest delay bound, or 0 for an empty table.
    pub fn min_delay_bound(&self) -> u64 {
        self.colors.iter().map(|c| c.delay_bound).min().unwrap_or(0)
    }
}

impl std::ops::Index<ColorId> for ColorTable {
    type Output = ColorInfo;
    fn index(&self, id: ColorId) -> &ColorInfo {
        &self.colors[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_dense_ids() {
        let mut t = ColorTable::new();
        let a = t.push(ColorInfo::new(4));
        let b = t.push(ColorInfo::new(8));
        assert_eq!(a, ColorId(0));
        assert_eq!(b, ColorId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.delay_bound(a), 4);
        assert_eq!(t.delay_bound(b), 8);
    }

    #[test]
    fn from_delay_bounds_roundtrips() {
        let t = ColorTable::from_delay_bounds(&[1, 2, 16]);
        let got: Vec<u64> = t.iter().map(|(_, i)| i.delay_bound).collect();
        assert_eq!(got, vec![1, 2, 16]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_delay_bound_rejected() {
        ColorInfo::new(0);
    }

    #[test]
    fn pow2_detection() {
        assert!(ColorInfo::new(1).is_pow2());
        assert!(ColorInfo::new(64).is_pow2());
        assert!(!ColorInfo::new(12).is_pow2());
        assert!(ColorTable::from_delay_bounds(&[2, 4, 8]).all_pow2());
        assert!(!ColorTable::from_delay_bounds(&[2, 3]).all_pow2());
    }

    #[test]
    fn min_max_delay_bounds() {
        let t = ColorTable::from_delay_bounds(&[8, 2, 32]);
        assert_eq!(t.min_delay_bound(), 2);
        assert_eq!(t.max_delay_bound(), 32);
        assert_eq!(ColorTable::new().max_delay_bound(), 0);
    }

    #[test]
    fn consistent_order_is_id_order() {
        let t = ColorTable::from_delay_bounds(&[8, 2, 32]);
        let ids: Vec<ColorId> = t.ids().collect();
        assert_eq!(ids, vec![ColorId(0), ColorId(1), ColorId(2)]);
    }
}
