//! The round-based simulation engine.
//!
//! [`Engine::run`] drives an online [`Policy`] over a [`Trace`], executing the
//! four phases of every round (paper §2):
//!
//! 1. **drop** — pending jobs whose deadline equals the current round are dropped
//!    at their color's drop cost each (unit in the paper's main problem);
//! 2. **arrival** — the round's request is received and its jobs become pending;
//! 3. **reconfiguration** — the policy returns the desired cache content; the
//!    engine charges Δ per location that gains a color;
//! 4. **execution** — every cached location executes one earliest-deadline
//!    pending job of its color (if any).
//!
//! With [`Speed::Double`], phases 3–4 repeat (two mini-rounds per round), which is
//! how the paper's analysis-only algorithm DS-Seq-EDF is defined (§3.3).
//!
//! The engine is policy-agnostic: batched algorithms such as ΔLRU-EDF are plain
//! [`Policy`] implementations that keep their own per-color state and rely on the
//! input being batched; nothing in the engine special-cases them.

use crate::color::{ColorId, ColorTable};
use crate::cost::CostModel;
use crate::error::{Error, Result};
use crate::pending::PendingJobs;
use crate::resource::{CacheState, CacheTarget};
use crate::schedule::{ExplicitSchedule, ScheduleStep};
use crate::stats::{PerfCounters, RunResult};
use crate::time::{Round, Speed};
use crate::trace::Trace;

/// Read-only snapshot handed to policies at every phase callback.
pub struct EngineView<'a> {
    /// Pending-job state (counts, earliest deadlines, idleness per color).
    pub pending: &'a PendingJobs,
    /// Current cache content.
    pub cache: &'a CacheState,
    /// The instance's color table.
    pub colors: &'a ColorTable,
    /// Number of resources given to the policy.
    pub n: usize,
    /// Reconfiguration cost Δ.
    pub delta: u64,
}

impl<'a> EngineView<'a> {
    /// Builds a view over the given engine state. The engine constructs one
    /// view per phase boundary (the phases mutate `pending`/`cache`, so a view
    /// cannot outlive the phase it was built for).
    pub fn new(
        pending: &'a PendingJobs,
        cache: &'a CacheState,
        colors: &'a ColorTable,
        n: usize,
        delta: u64,
    ) -> Self {
        EngineView {
            pending,
            cache,
            colors,
            n,
            delta,
        }
    }
}

/// An online reconfiguration scheme.
///
/// The engine calls the three hooks in phase order each round. Only
/// [`Policy::reconfigure`] affects the run; the other hooks let policies maintain
/// per-color state (counters, eligibility, timestamps).
///
/// Policies must be `Send` so an engine can be owned by a worker thread (the
/// service layer runs one engine per tenant inside shard workers). Policies
/// are plain data structures, so this costs implementors nothing.
pub trait Policy: Send {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> String;

    /// Called after the drop phase with the jobs that were just dropped
    /// (`(color, count)` pairs in color order; empty most rounds).
    fn on_drop_phase(&mut self, _round: Round, _dropped: &[(ColorId, u64)], _view: &EngineView) {}

    /// Called after the arrival phase with the round's arrivals
    /// (`(color, count)` pairs in color order; empty when no request content).
    fn on_arrival_phase(
        &mut self,
        _round: Round,
        _arrivals: &[(ColorId, u64)],
        _view: &EngineView,
    ) {
    }

    /// Returns the desired cache content for mini-round `mini` of `round`.
    /// The returned multiset must have size ≤ `view.n`.
    fn reconfigure(&mut self, round: Round, mini: u32, view: &EngineView) -> CacheTarget;
}

/// Engine options.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Uni- or double-speed execution.
    pub speed: Speed,
    /// Record an [`ExplicitSchedule`] for independent re-validation.
    pub record_schedule: bool,
    /// Record a [`crate::LatencyHistogram`] of execution sojourn times.
    pub track_latency: bool,
    /// Record deterministic hot-path [`PerfCounters`] in the result.
    pub track_perf: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            speed: Speed::Uni,
            record_schedule: false,
            track_latency: false,
            track_perf: false,
        }
    }
}

/// The simulation engine. See the module docs for the phase semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine {
    options: EngineOptions,
}

impl Engine {
    /// Creates an engine with default options (uni-speed, no schedule recording).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with the given options.
    pub fn with_options(options: EngineOptions) -> Self {
        Engine { options }
    }

    /// Runs `policy` with `n` resources over `trace` and returns full cost
    /// accounting. Simulates rounds `0 ..= trace.horizon()` so that every job is
    /// either executed or dropped by the end.
    pub fn run(
        &self,
        trace: &Trace,
        policy: &mut dyn Policy,
        n: usize,
        cost_model: CostModel,
    ) -> Result<RunResult> {
        if n == 0 {
            return Err(Error::InvalidParameter(
                "engine needs at least one resource".into(),
            ));
        }
        let colors = trace.colors();
        let mini_rounds = self.options.speed.mini_rounds();
        let mut pending = PendingJobs::new(colors.len());
        let mut cache = CacheState::new(n);
        let mut result = RunResult::new(policy.name(), n, cost_model.delta, colors.len());
        let mut schedule = self.options.record_schedule.then(|| ExplicitSchedule {
            n,
            speed: self.options.speed,
            steps: Vec::new(),
        });
        let mut latency = self
            .options
            .track_latency
            .then(crate::latency::LatencyHistogram::new);
        let mut perf = self.options.track_perf.then(PerfCounters::default);

        // Reusable scratch, allocated once for the whole run: the hot path
        // performs no per-round allocations (the expiry wheel and the arrival
        // map fill these in place).
        let mut dropped: Vec<(ColorId, u64)> = Vec::new();
        let mut arrivals: Vec<(ColorId, u64)> = Vec::new();
        let mut executed_colors: Vec<ColorId> = Vec::new();
        // Last recorded cache content, for copy-on-change schedule steps.
        let mut last_target: Option<CacheTarget> = None;

        let horizon = trace.horizon();
        for round in 0..=horizon {
            // Phase 1: drop.
            pending.drop_expired_into(round, &mut dropped);
            for &(color, count) in &dropped {
                result.record_drops(color, count, colors.drop_cost(color));
            }
            let view = EngineView::new(&pending, &cache, colors, n, cost_model.delta);
            policy.on_drop_phase(round, &dropped, &view);

            // Phase 2: arrival.
            trace.arrivals_into(round, &mut arrivals);
            for &(color, count) in &arrivals {
                let deadline = round + colors.delay_bound(color);
                pending.arrive(color, deadline, count);
            }
            let view = EngineView::new(&pending, &cache, colors, n, cost_model.delta);
            policy.on_arrival_phase(round, &arrivals, &view);

            if let Some(p) = perf.as_mut() {
                p.rounds += 1;
                p.drop_colors_touched += dropped.len() as u64;
                p.arrival_colors_touched += arrivals.len() as u64;
                p.dropped_hwm = p.dropped_hwm.max(dropped.len());
                p.arrivals_hwm = p.arrivals_hwm.max(arrivals.len());
            }

            // Phases 3–4, once per mini-round.
            for mini in 0..mini_rounds {
                let view = EngineView::new(&pending, &cache, colors, n, cost_model.delta);
                let target = policy.reconfigure(round, mini, &view);
                let recolored = cache.apply(&target).ok_or(Error::CacheOverflow {
                    round,
                    requested: target.size(),
                    available: n,
                })?;
                result.record_reconfigs(recolored, cost_model.delta);

                executed_colors.clear();
                for (color, copies) in target.iter() {
                    if let Some(p) = perf.as_mut() {
                        p.exec_slots += copies as u64;
                    }
                    for _ in 0..copies {
                        if let Some(deadline) = pending.execute_one(color) {
                            result.record_execution(color);
                            if let Some(h) = latency.as_mut() {
                                // sojourn = round − arrival = round − (deadline − D).
                                let arrival = deadline - colors.delay_bound(color);
                                h.record(round - arrival);
                            }
                            if schedule.is_some() {
                                executed_colors.push(color);
                            }
                        }
                    }
                }
                if let Some(p) = perf.as_mut() {
                    p.executed_hwm = p.executed_hwm.max(executed_colors.len());
                }
                if let Some(s) = schedule.as_mut() {
                    // Copy-on-change: record the content only when it differs
                    // from the previous step's.
                    let changed = last_target.as_ref() != Some(&target);
                    s.steps.push(ScheduleStep {
                        round,
                        mini,
                        cache: changed.then(|| target.clone()),
                        executed: std::mem::take(&mut executed_colors),
                    });
                }
                last_target = Some(target);
            }
        }
        debug_assert_eq!(pending.total(), 0, "all jobs resolved by the horizon");
        debug_assert_eq!(
            result.executed + result.dropped_jobs,
            trace.total_jobs(),
            "every job is executed or dropped exactly once"
        );
        result.rounds = horizon + 1;
        result.schedule = schedule;
        result.latency = latency;
        result.perf = perf;
        Ok(result)
    }
}

/// Convenience wrapper: run `policy` with default options.
pub fn run_policy(
    trace: &Trace,
    policy: &mut dyn Policy,
    n: usize,
    delta: u64,
) -> Result<RunResult> {
    Engine::new().run(trace, policy, n, CostModel::new(delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    /// Caches a fixed set of colors forever, starting at a given round.
    struct FixedPolicy {
        target: CacheTarget,
        from_round: Round,
    }

    impl Policy for FixedPolicy {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn reconfigure(&mut self, round: Round, _mini: u32, _view: &EngineView) -> CacheTarget {
            if round >= self.from_round {
                self.target.clone()
            } else {
                CacheTarget::empty()
            }
        }
    }

    /// Never caches anything: every job is dropped.
    struct IdlePolicy;
    impl Policy for IdlePolicy {
        fn name(&self) -> String {
            "idle".into()
        }
        fn reconfigure(&mut self, _round: Round, _mini: u32, _view: &EngineView) -> CacheTarget {
            CacheTarget::empty()
        }
    }

    #[test]
    fn idle_policy_drops_everything() {
        let trace = TraceBuilder::with_delay_bounds(&[4])
            .jobs(0, 0, 3)
            .jobs(4, 0, 2)
            .build();
        let r = run_policy(&trace, &mut IdlePolicy, 2, 5).unwrap();
        assert_eq!(r.cost.drop, 5);
        assert_eq!(r.cost.reconfig, 0);
        assert_eq!(r.executed, 0);
    }

    #[test]
    fn single_color_executes_within_window() {
        // 3 jobs of D=4 at round 0; one resource configured from round 0:
        // executes rounds 0,1,2 — zero drops, one reconfiguration.
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 3).build();
        let mut p = FixedPolicy {
            target: CacheTarget::singles([ColorId(0)]),
            from_round: 0,
        };
        let r = run_policy(&trace, &mut p, 1, 7).unwrap();
        assert_eq!(r.cost.drop, 0);
        assert_eq!(r.cost.reconfig, 7);
        assert_eq!(r.executed, 3);
        assert_eq!(r.reconfig_events, 1);
    }

    #[test]
    fn late_configuration_drops_the_overflow() {
        // 4 jobs, D=4, resource configured from round 2: executes rounds 2,3 only.
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 4).build();
        let mut p = FixedPolicy {
            target: CacheTarget::singles([ColorId(0)]),
            from_round: 2,
        };
        let r = run_policy(&trace, &mut p, 1, 3).unwrap();
        assert_eq!(r.executed, 2);
        assert_eq!(r.cost.drop, 2);
    }

    #[test]
    fn replication_doubles_throughput() {
        let trace = TraceBuilder::with_delay_bounds(&[2]).jobs(0, 0, 4).build();
        let mut p = FixedPolicy {
            target: CacheTarget::replicated([ColorId(0)], 2),
            from_round: 0,
        };
        let r = run_policy(&trace, &mut p, 2, 1).unwrap();
        assert_eq!(r.executed, 4); // 2 copies × 2 rounds
        assert_eq!(r.cost.drop, 0);
        assert_eq!(r.cost.reconfig, 2); // two locations gained a color once
    }

    #[test]
    fn double_speed_doubles_executions_per_round() {
        let trace = TraceBuilder::with_delay_bounds(&[2]).jobs(0, 0, 4).build();
        let mut p = FixedPolicy {
            target: CacheTarget::singles([ColorId(0)]),
            from_round: 0,
        };
        let engine = Engine::with_options(EngineOptions {
            speed: Speed::Double,
            record_schedule: false,
            track_latency: false,
            track_perf: false,
        });
        let r = engine
            .run(&trace, &mut p, 1, CostModel::new(1))
            .unwrap();
        assert_eq!(r.executed, 4); // 1 copy × 2 mini-rounds × 2 rounds
        assert_eq!(r.cost.drop, 0);
    }

    #[test]
    fn cache_overflow_is_an_error() {
        let trace = TraceBuilder::with_delay_bounds(&[2]).jobs(0, 0, 1).build();
        let mut p = FixedPolicy {
            target: CacheTarget::replicated([ColorId(0)], 3),
            from_round: 0,
        };
        let err = run_policy(&trace, &mut p, 2, 1).unwrap_err();
        assert!(matches!(err, Error::CacheOverflow { .. }));
    }

    #[test]
    fn executed_plus_dropped_equals_total() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 2])
            .jobs(0, 0, 5)
            .jobs(1, 1, 3)
            .jobs(6, 1, 2)
            .build();
        let mut p = FixedPolicy {
            target: CacheTarget::singles([ColorId(1)]),
            from_round: 0,
        };
        let r = run_policy(&trace, &mut p, 1, 2).unwrap();
        assert_eq!(r.executed + r.cost.drop, trace.total_jobs());
    }

    #[test]
    fn zero_resources_rejected() {
        let trace = TraceBuilder::with_delay_bounds(&[2]).build();
        assert!(run_policy(&trace, &mut IdlePolicy, 0, 1).is_err());
    }

    #[test]
    fn latency_tracking_measures_sojourns() {
        // 3 jobs, D=4, one resource from round 0: executed at rounds 0,1,2
        // with sojourns 0,1,2.
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 3).build();
        let mut p = FixedPolicy {
            target: CacheTarget::singles([ColorId(0)]),
            from_round: 0,
        };
        let engine = Engine::with_options(EngineOptions {
            speed: Speed::Uni,
            record_schedule: false,
            track_latency: true,
            track_perf: false,
        });
        let r = engine.run(&trace, &mut p, 1, CostModel::new(1)).unwrap();
        let h = r.latency.as_ref().expect("tracking enabled");
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets(), &[1, 1, 1]);
        assert!((h.mean() - 1.0).abs() < 1e-12);
        assert_eq!(h.max(), 2);
        // Disabled by default.
        let mut p2 = FixedPolicy {
            target: CacheTarget::singles([ColorId(0)]),
            from_round: 0,
        };
        let r2 = run_policy(&trace, &mut p2, 1, 1).unwrap();
        assert!(r2.latency.is_none());
    }

    #[test]
    fn recorded_schedule_replays_to_same_cost() {
        let trace = TraceBuilder::with_delay_bounds(&[4, 8])
            .jobs(0, 0, 3)
            .jobs(0, 1, 2)
            .jobs(4, 0, 1)
            .build();
        let mut p = FixedPolicy {
            target: CacheTarget::singles([ColorId(0), ColorId(1)]),
            from_round: 1,
        };
        let engine = Engine::with_options(EngineOptions {
            speed: Speed::Uni,
            record_schedule: true,
            track_latency: false,
            track_perf: false,
        });
        let r = engine.run(&trace, &mut p, 2, CostModel::new(3)).unwrap();
        let sched = r.schedule.as_ref().unwrap();
        let cost = crate::schedule::check_schedule(&trace, sched, CostModel::new(3)).unwrap();
        assert_eq!(cost, r.cost);
    }
}
