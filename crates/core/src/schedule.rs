//! Explicit schedules and the independent schedule checker.
//!
//! A *schedule* specifies, for every (mini-)round, the cache content and the jobs
//! executed (paper §2). [`ExplicitSchedule`] is the materialized form;
//! [`check_schedule`] replays one against a trace, verifying feasibility
//! (capacity, color availability, deadline windows) and recomputing its cost from
//! scratch. The checker shares no code with the engine's accounting beyond the
//! pending-jobs structure, so it serves as an independent oracle for the engine,
//! the offline DP, and the paper's schedule transformations (`Aggregate`,
//! `VarBatch`'s punctual schedules).

use crate::color::ColorId;
use crate::cost::{Cost, CostModel};
use crate::error::{Error, Result};
use crate::pending::PendingJobs;
use crate::resource::{CacheState, CacheTarget};
use crate::time::{Round, Speed};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// One mini-round of a schedule: the cache content after the reconfiguration
/// phase and the colors of the jobs executed in the execution phase.
///
/// The cache content is stored **copy-on-change**: `cache: None` means "same
/// content as the previous step" (and charges no reconfiguration), so long
/// stretches of a stable configuration cost one `CacheTarget` instead of one
/// clone per mini-round. Use [`ScheduleStep::new`] to build a step with an
/// explicit content, and [`ScheduleStep::cache_or`] to resolve the effective
/// content while walking a schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleStep {
    /// Round index.
    pub round: Round,
    /// Mini-round index within the round (0, or 0–1 at double speed).
    pub mini: u32,
    /// Cache content during this mini-round; `None` = unchanged from the
    /// previous step (an initial `None` means the empty cache).
    pub cache: Option<CacheTarget>,
    /// Colors of executed jobs (each entry = one unit job; at most one per cached
    /// location of that color).
    pub executed: Vec<ColorId>,
}

impl ScheduleStep {
    /// Builds a step with an explicit cache content.
    pub fn new(round: Round, mini: u32, cache: CacheTarget, executed: Vec<ColorId>) -> Self {
        ScheduleStep {
            round,
            mini,
            cache: Some(cache),
            executed,
        }
    }

    /// The effective cache content of this step, given the content `prev` in
    /// force before it.
    pub fn cache_or<'a>(&'a self, prev: &'a CacheTarget) -> &'a CacheTarget {
        self.cache.as_ref().unwrap_or(prev)
    }
}

/// A fully materialized schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplicitSchedule {
    /// Number of resources.
    pub n: usize,
    /// Uni- or double-speed.
    pub speed: Speed,
    /// Steps in (round, mini) order. Steps may stop early; missing trailing
    /// steps are treated as an empty cache (no executions).
    pub steps: Vec<ScheduleStep>,
}

impl ExplicitSchedule {
    /// Creates an empty schedule.
    pub fn new(n: usize, speed: Speed) -> Self {
        ExplicitSchedule {
            n,
            speed,
            steps: Vec::new(),
        }
    }

    /// Total number of executed jobs.
    pub fn executed_jobs(&self) -> u64 {
        self.steps.iter().map(|s| s.executed.len() as u64).sum()
    }
}

/// Replays `schedule` against `trace`, verifying feasibility and recomputing the
/// cost. Returns the recomputed [`Cost`] or a descriptive
/// [`Error::InvalidSchedule`].
///
/// Checks performed per step:
/// * steps are in strictly increasing (round, mini) order, `mini < speed`;
/// * cache content fits in `n` locations;
/// * at most one execution per cached location of each color;
/// * every executed job has a pending job of that color within its window.
///
/// Drop cost is `total jobs − executed jobs`; reconfiguration cost is Δ × the
/// number of locations gaining a color, replayed via [`CacheState`].
pub fn check_schedule(
    trace: &Trace,
    schedule: &ExplicitSchedule,
    cost_model: CostModel,
) -> Result<Cost> {
    let colors = trace.colors();
    let minis = schedule.speed.mini_rounds();
    let mut pending = PendingJobs::new(colors.len());
    let mut cache = CacheState::new(schedule.n);
    let mut cost = Cost::ZERO;
    let mut executed_by_color: Vec<u64> = vec![0; colors.len()];
    // Cache content in force, resolving copy-on-change steps.
    let mut current = CacheTarget::empty();

    let horizon = trace.horizon();
    let mut step_iter = schedule.steps.iter().peekable();

    for round in 0..=horizon {
        pending.drop_expired(round);
        for (color, count) in trace.arrivals_at(round) {
            pending.arrive(color, round + colors.delay_bound(color), count);
        }
        for mini in 0..minis {
            let step = match step_iter.peek() {
                Some(s) if s.round == round && s.mini == mini => step_iter.next().unwrap(),
                Some(s) if (s.round, s.mini) < (round, mini) => {
                    return Err(Error::InvalidSchedule {
                        round,
                        reason: format!(
                            "step ({}, {}) out of order or duplicated",
                            s.round, s.mini
                        ),
                    });
                }
                _ => continue, // no step for this mini-round: empty cache
            };
            if step.mini >= minis {
                return Err(Error::InvalidSchedule {
                    round,
                    reason: format!("mini-round {} exceeds speed {}", step.mini, minis),
                });
            }
            // Copy-on-change: `None` keeps the previous content in force and
            // cannot recolor anything (applying an identical target charges 0,
            // so this is exactly equivalent to re-applying it).
            if let Some(target) = &step.cache {
                let recolored = cache.apply(target).ok_or(Error::InvalidSchedule {
                    round,
                    reason: format!(
                        "cache content of size {} exceeds {} locations",
                        target.size(),
                        schedule.n
                    ),
                })?;
                cost.reconfig += recolored * cost_model.delta;
                current = target.clone();
            }

            // Per-color execution count must not exceed cached copies.
            let mut counts: std::collections::BTreeMap<ColorId, u32> = Default::default();
            for &c in &step.executed {
                *counts.entry(c).or_insert(0) += 1;
            }
            for (&c, &k) in &counts {
                if k > current.copies_of(c) {
                    return Err(Error::InvalidSchedule {
                        round,
                        reason: format!(
                            "{k} executions of {c} but only {} cached copies",
                            current.copies_of(c)
                        ),
                    });
                }
                for _ in 0..k {
                    if pending.execute_one(c).is_none() {
                        return Err(Error::InvalidSchedule {
                            round,
                            reason: format!("execution of {c} with no pending job"),
                        });
                    }
                    executed_by_color[c.index()] += 1;
                }
            }
        }
    }
    if let Some(s) = step_iter.next() {
        return Err(Error::InvalidSchedule {
            round: s.round,
            reason: format!("step at round {} beyond the horizon {horizon}", s.round),
        });
    }
    // Drop cost: unexecuted jobs, weighted by their color's drop cost.
    cost.drop = colors
        .ids()
        .map(|c| (trace.jobs_of_color(c) - executed_by_color[c.index()]) * colors.drop_cost(c))
        .sum();
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn c(i: u32) -> ColorId {
        ColorId(i)
    }

    fn simple_trace() -> Trace {
        TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 2).build()
    }

    #[test]
    fn valid_schedule_costs_correctly() {
        let trace = simple_trace();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        for round in 0..2 {
            s.steps.push(ScheduleStep::new(round, 0, CacheTarget::singles([c(0)]), vec![c(0)]));
        }
        let cost = check_schedule(&trace, &s, CostModel::new(5)).unwrap();
        assert_eq!(cost, Cost::new(5, 0)); // one recoloring, no drops
    }

    #[test]
    fn missing_steps_mean_drops() {
        let trace = simple_trace();
        let s = ExplicitSchedule::new(1, Speed::Uni);
        let cost = check_schedule(&trace, &s, CostModel::new(5)).unwrap();
        assert_eq!(cost, Cost::new(0, 2));
    }

    #[test]
    fn execution_without_cached_color_rejected() {
        let trace = simple_trace();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps.push(ScheduleStep::new(0, 0, CacheTarget::empty(), vec![c(0)]));
        assert!(check_schedule(&trace, &s, CostModel::new(1)).is_err());
    }

    #[test]
    fn execution_without_pending_job_rejected() {
        let trace = simple_trace(); // only 2 jobs
        let mut s = ExplicitSchedule::new(2, Speed::Uni);
        for round in 0..2 {
            s.steps
                .push(ScheduleStep::new(round, 0, CacheTarget::replicated([c(0)], 2), vec![c(0), c(0)]));
        }
        // Round 1 tries to execute 2 more jobs but none are pending.
        assert!(check_schedule(&trace, &s, CostModel::new(1)).is_err());
    }

    #[test]
    fn late_execution_rejected() {
        // Job window is rounds 0..=3 (D=4). Executing at round 4 must fail
        // because the job was dropped in round 4's drop phase.
        let trace = TraceBuilder::with_delay_bounds(&[4]).jobs(0, 0, 1).build();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps.push(ScheduleStep::new(4, 0, CacheTarget::singles([c(0)]), vec![c(0)]));
        assert!(check_schedule(&trace, &s, CostModel::new(1)).is_err());
    }

    #[test]
    fn capacity_overflow_rejected() {
        let trace = simple_trace();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps
            .push(ScheduleStep::new(0, 0, CacheTarget::replicated([c(0)], 2), vec![]));
        assert!(check_schedule(&trace, &s, CostModel::new(1)).is_err());
    }

    #[test]
    fn out_of_order_steps_rejected() {
        let trace = simple_trace();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        let step = |round| ScheduleStep::new(round, 0, CacheTarget::empty(), vec![]);
        s.steps.push(step(1));
        s.steps.push(step(0));
        assert!(check_schedule(&trace, &s, CostModel::new(1)).is_err());
    }

    #[test]
    fn step_beyond_horizon_rejected() {
        let trace = simple_trace(); // horizon = 4
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps.push(ScheduleStep::new(99, 0, CacheTarget::empty(), vec![]));
        assert!(check_schedule(&trace, &s, CostModel::new(1)).is_err());
    }

    #[test]
    fn double_speed_executes_twice_per_round() {
        // 4 jobs with D=2 need double speed on one resource.
        let trace = TraceBuilder::with_delay_bounds(&[2]).jobs(0, 0, 4).build();
        let mut s = ExplicitSchedule::new(1, Speed::Double);
        for round in 0..2 {
            for mini in 0..2 {
                s.steps.push(ScheduleStep::new(round, mini, CacheTarget::singles([c(0)]), vec![c(0)]));
            }
        }
        let cost = check_schedule(&trace, &s, CostModel::new(3)).unwrap();
        assert_eq!(cost, Cost::new(3, 0));
    }

    #[test]
    fn reconfig_cost_replay_counts_gained_copies() {
        // Alternate between two colors every round: each switch recolors one
        // location.
        let trace = TraceBuilder::with_delay_bounds(&[2, 2])
            .jobs(0, 0, 1)
            .jobs(2, 1, 1)
            .jobs(4, 0, 1)
            .build();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        for (round, color) in [(0, 0), (2, 1), (4, 0)] {
            s.steps.push(ScheduleStep::new(round, 0, CacheTarget::singles([c(color)]), vec![c(color)]));
        }
        let cost = check_schedule(&trace, &s, CostModel::new(2)).unwrap();
        assert_eq!(cost, Cost::new(6, 0)); // three recolorings × Δ=2
    }

    #[test]
    fn copy_on_change_step_keeps_previous_content() {
        // Round 0 configures c0; round 1 carries it via `cache: None` and
        // still executes. Costs match the fully explicit schedule.
        let trace = simple_trace();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps
            .push(ScheduleStep::new(0, 0, CacheTarget::singles([c(0)]), vec![c(0)]));
        s.steps.push(ScheduleStep {
            round: 1,
            mini: 0,
            cache: None,
            executed: vec![c(0)],
        });
        let cost = check_schedule(&trace, &s, CostModel::new(5)).unwrap();
        assert_eq!(cost, Cost::new(5, 0));
    }

    #[test]
    fn initial_none_step_means_empty_cache() {
        // A leading `cache: None` resolves to the empty cache, so an
        // execution there is infeasible.
        let trace = simple_trace();
        let mut s = ExplicitSchedule::new(1, Speed::Uni);
        s.steps.push(ScheduleStep {
            round: 0,
            mini: 0,
            cache: None,
            executed: vec![c(0)],
        });
        assert!(check_schedule(&trace, &s, CostModel::new(1)).is_err());
    }

    #[test]
    fn cache_or_resolves_against_previous_content() {
        let prev = CacheTarget::singles([c(1)]);
        let explicit = ScheduleStep::new(0, 0, CacheTarget::singles([c(0)]), vec![]);
        assert_eq!(explicit.cache_or(&prev), &CacheTarget::singles([c(0)]));
        let carried = ScheduleStep {
            round: 1,
            mini: 0,
            cache: None,
            executed: vec![],
        };
        assert_eq!(carried.cache_or(&prev), &prev);
    }
}
