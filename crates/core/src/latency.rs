//! Execution-latency (sojourn time) tracking.
//!
//! QoS systems care not only about *whether* a job met its deadline but *how
//! long it waited*. A job of color ℓ executed in round `r` arrived in round
//! `deadline − D_ℓ`, so its sojourn is `r − (deadline − D_ℓ)` rounds — always
//! in `0 .. D_ℓ`. [`LatencyHistogram`] aggregates these per run; the engine
//! fills one in when [`crate::EngineOptions::track_latency`] is set.

use serde::{Deserialize, Serialize};

/// A histogram of execution latencies (sojourn times), in rounds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// `buckets[l]` = number of jobs executed with sojourn exactly `l` rounds.
    buckets: Vec<u64>,
    total: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution with the given sojourn.
    pub fn record(&mut self, sojourn: u64) {
        let idx = sojourn as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Number of recorded executions.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean sojourn in rounds (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(l, &n)| l as u64 * n)
            .sum();
        sum as f64 / self.total as f64
    }

    /// The `q`-quantile sojourn (`q` in `[0, 1]`); 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (l, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return l as u64;
            }
        }
        (self.buckets.len() - 1) as u64
    }

    /// Maximum recorded sojourn.
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(|i| i as u64)
            .unwrap_or(0)
    }

    /// Raw buckets (index = sojourn in rounds).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = LatencyHistogram::new();
        for l in [0u64, 0, 1, 3, 3, 3] {
            h.record(l);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.max(), 3);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), 3);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.buckets(), &[2, 1, 0, 3]);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.9), 0);
        assert_eq!(h.max(), 0);
    }
}
