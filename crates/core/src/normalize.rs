//! Trace normalization: projecting a trace into the paper's batch classes.
//!
//! The reductions of §4–§5 transform *problems*; these helpers transform
//! *traces* directly, which tests and tooling use to manufacture inputs of a
//! given class from arbitrary material:
//!
//! * [`snap_to_batched`] moves every arrival back to the most recent multiple
//!   of its color's delay bound (earlier arrival, same deadline window ⊇
//!   original — any schedule for the original stays feasible);
//! * [`clamp_rate_limited`] truncates batches to `D_ℓ` jobs (a sub-trace);
//! * [`round_delay_bounds_pow2`] rounds every delay bound *down* to a power
//!   of two (shrinking windows — schedules for the rounded trace remain
//!   feasible for the original), the preprocessing §5.3 implies.

use crate::color::{ColorInfo, ColorTable};
use crate::time::pow2_floor;
use crate::trace::Trace;

/// Moves each arrival to the latest multiple of `D_ℓ` at or before it.
pub fn snap_to_batched(trace: &Trace) -> Trace {
    let mut out = Trace::new(trace.colors().clone());
    for a in trace.iter() {
        let d = trace.colors().delay_bound(a.color);
        out.add(a.round - a.round % d, a.color, a.count)
            .expect("same colors");
    }
    out
}

/// Truncates every batch to at most `D_ℓ` jobs; returns the clamped trace and
/// the number of jobs removed.
pub fn clamp_rate_limited(trace: &Trace) -> (Trace, u64) {
    let mut out = Trace::new(trace.colors().clone());
    let mut removed = 0;
    for a in trace.iter() {
        let d = trace.colors().delay_bound(a.color);
        let keep = a.count.min(d);
        removed += a.count - keep;
        out.add(a.round, a.color, keep).expect("same colors");
    }
    (out, removed)
}

/// Rounds every delay bound down to a power of two, keeping arrivals.
pub fn round_delay_bounds_pow2(trace: &Trace) -> Trace {
    let mut table = ColorTable::new();
    for (_, info) in trace.colors().iter() {
        table.push(ColorInfo::with_drop_cost(
            pow2_floor(info.delay_bound),
            info.drop_cost,
        ));
    }
    let mut out = Trace::new(table);
    for a in trace.iter() {
        out.add(a.round, a.color, a.count).expect("same colors");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{BatchClass, TraceBuilder};

    #[test]
    fn snap_produces_batched_traces() {
        let t = TraceBuilder::with_delay_bounds(&[4, 8])
            .jobs(3, 0, 2)
            .jobs(9, 1, 5)
            .jobs(4, 0, 1)
            .build();
        let b = snap_to_batched(&t);
        assert_ne!(b.batch_class(), BatchClass::General);
        assert_eq!(b.total_jobs(), t.total_jobs());
        assert_eq!(b.arrivals_at(0), vec![(crate::ColorId(0), 2)]);
        assert_eq!(b.arrivals_at(8), vec![(crate::ColorId(1), 5)]);
    }

    #[test]
    fn snap_widens_windows() {
        // Snapped jobs arrive earlier with the same delay bound, so any
        // original-feasible execution stays feasible... but deadlines shrink
        // (arrival + D moves earlier). What holds: snapped deadline <=
        // original deadline and snapped arrival <= original arrival.
        let t = TraceBuilder::with_delay_bounds(&[4]).jobs(6, 0, 1).build();
        let b = snap_to_batched(&t);
        let orig = t.iter().next().unwrap();
        let snap = b.iter().next().unwrap();
        assert!(snap.round <= orig.round);
        assert!(snap.round + 4 <= orig.round + 4);
    }

    #[test]
    fn clamp_counts_removed_jobs() {
        let t = TraceBuilder::with_delay_bounds(&[4])
            .jobs(0, 0, 10)
            .jobs(4, 0, 3)
            .build();
        let (c, removed) = clamp_rate_limited(&t);
        assert_eq!(removed, 6);
        assert_eq!(c.total_jobs(), 7);
        assert_eq!(c.batch_class(), BatchClass::RateLimited);
    }

    #[test]
    fn pow2_rounding_shrinks_bounds() {
        let t = TraceBuilder::with_delay_bounds(&[5, 12, 8])
            .jobs(0, 0, 1)
            .jobs(0, 1, 1)
            .jobs(0, 2, 1)
            .build();
        let r = round_delay_bounds_pow2(&t);
        let bounds: Vec<u64> = r.colors().iter().map(|(_, i)| i.delay_bound).collect();
        assert_eq!(bounds, vec![4, 8, 8]);
        assert!(r.colors().all_pow2());
        assert_eq!(r.total_jobs(), 3);
    }

    #[test]
    fn pow2_rounding_preserves_drop_costs() {
        let mut table = ColorTable::new();
        table.push(ColorInfo::with_drop_cost(6, 9));
        let mut t = Trace::new(table);
        t.add(0, crate::ColorId(0), 1).unwrap();
        let r = round_delay_bounds_pow2(&t);
        assert_eq!(r.colors().drop_cost(crate::ColorId(0)), 9);
        assert_eq!(r.colors().delay_bound(crate::ColorId(0)), 4);
    }
}
